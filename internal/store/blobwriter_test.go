package store

import (
	"errors"
	"testing"
)

// TestBlobWriterAbortCommitEdges pins the BlobWriter lifecycle corners
// shared by both backends: an abort must not disturb existing
// generations, Commit after Abort must fail, Abort after Commit must
// not retract the published blob, and double Abort is a no-op.
func TestBlobWriterAbortCommitEdges(t *testing.T) {
	t.Parallel()
	backends := map[string]func(t *testing.T) Backend{
		"dir": func(t *testing.T) Backend {
			b, err := NewDirBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
		"mem": func(t *testing.T) Backend { return NewMemBackend() },
	}
	for name, mk := range backends {
		mk := mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b := mk(t)
			if err := b.Put("h", []byte("gen-1"), false); err != nil {
				t.Fatal(err)
			}
			if err := b.Put("h", []byte("gen-2"), false); err != nil {
				t.Fatal(err)
			}

			// Abort mid-stream: both existing generations survive.
			w, err := b.PutStream("h", false)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write([]byte("doomed")); err != nil {
				t.Fatal(err)
			}
			w.Abort()
			w.Abort() // idempotent
			if err := w.Commit(); err == nil {
				t.Fatal("Commit after Abort succeeded")
			}
			got, err := b.Get("h", nil)
			if err != nil || string(got) != "gen-2" {
				t.Fatalf("Get after aborted stream = %q, %v; want gen-2", got, err)
			}
			got, err = b.Get("h", func(data []byte) error {
				if string(data) == "gen-2" {
					return errors.New("pretend torn")
				}
				return nil
			})
			if err != nil || string(got) != "gen-1" {
				t.Fatalf("backup after aborted stream = %q, %v; want gen-1", got, err)
			}

			// Abort after Commit must not retract the published blob.
			w, err = b.PutStream("h", false)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write([]byte("gen-3")); err != nil {
				t.Fatal(err)
			}
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			w.Abort()
			got, err = b.Get("h", nil)
			if err != nil || string(got) != "gen-3" {
				t.Fatalf("Get after Commit+Abort = %q, %v; want gen-3", got, err)
			}
		})
	}
}

// TestMemBackendOverlappingStreams pins MemBackend-only semantics the
// dir backend cannot offer (its writers share one temp path per name):
// two in-flight streams for the same name are independent, the later
// Commit wins, and the earlier one rotates into the backup generation.
func TestMemBackendOverlappingStreams(t *testing.T) {
	t.Parallel()
	b := NewMemBackend()
	w1, err := b.PutStream("h", false)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := b.PutStream("h", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := w1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Nothing is visible from w2 until its own Commit.
	got, err := b.Get("h", nil)
	if err != nil || string(got) != "first" {
		t.Fatalf("Get between commits = %q, %v; want first", got, err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err = b.Get("h", nil)
	if err != nil || string(got) != "second" {
		t.Fatalf("Get after both commits = %q, %v; want second", got, err)
	}
	got, err = b.Get("h", func(data []byte) error {
		if string(data) == "second" {
			return errors.New("pretend torn")
		}
		return nil
	})
	if err != nil || string(got) != "first" {
		t.Fatalf("backup generation = %q, %v; want first", got, err)
	}

	// A write after Abort is discarded with the writer: Commit still
	// fails and the published generations are untouched.
	w3, err := b.PutStream("h", false)
	if err != nil {
		t.Fatal(err)
	}
	w3.Abort()
	if _, err := w3.Write([]byte("zombie")); err != nil {
		t.Fatal(err)
	}
	if err := w3.Commit(); err == nil {
		t.Fatal("Commit after Abort succeeded")
	}
	if got, err := b.Get("h", nil); err != nil || string(got) != "second" {
		t.Fatalf("Get after zombie writer = %q, %v; want second", got, err)
	}
}
