package store

import (
	"testing"

	"coreda/internal/testutil"
)

// TestCheckpointCodecAllocBudget pins the codec's zero-allocation
// contract: steady-state encode into a buffer that has reached capacity
// and steady-state re-decode of a tenant's blob into a reused
// Checkpoint both allocate nothing. This is what keeps a fleet
// checkpoint wave's allocation cost independent of Q-table size.
// Enforced by the no-race pass of scripts/check.sh (the race detector's
// instrumentation allocates).
func TestCheckpointCodecAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc budgets are enforced by the no-race pass (scripts/check.sh)")
	}
	c := testCheckpoint()
	var buf []byte
	var err error
	if allocs := testing.AllocsPerRun(200, func() {
		if buf, err = AppendCheckpoint(buf[:0], c); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("steady-state encode allocates %.1f/op, want 0", allocs)
	}

	data, err := AppendCheckpoint(nil, c)
	if err != nil {
		t.Fatal(err)
	}
	var dec Checkpoint
	if allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeCheckpoint(&dec, data); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("steady-state decode allocates %.1f/op, want 0", allocs)
	}
	if !checkpointsEqual(c, &dec) {
		t.Fatal("alloc-budget decode produced a different checkpoint")
	}
}

// TestMultiSaverAllocBudget pins the whole staged save path above the
// backend — stage + encode — at zero steady-state allocations, so the
// only per-checkpoint costs left in a fleet wave are the file syscalls.
func TestMultiSaverAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc budgets are enforced by the no-race pass (scripts/check.sh)")
	}
	c := testCheckpoint()
	tables, states := materialize(t, c)
	var sv MultiSaver
	b := &discardBackend{}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := sv.Save(b, "h", c.User, c.Activity, c.Routines, tables, states, false); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("steady-state MultiSaver.Save allocates %.1f/op, want 0", allocs)
	}
}
