package store

import (
	"testing"

	"coreda/internal/rl"
)

// benchCheckpoint is a fleet-scale checkpoint: one routine and one
// learned Q-table of a few thousand entries, mostly small values with a
// sparse tail of zeros — the shape an evicted tenant actually writes.
func benchCheckpoint() *Checkpoint {
	const states, actions = 256, 16
	q := make([]float64, states*actions)
	for i := range q {
		if i%3 != 0 { // young tables are mostly zero
			q[i] = float64(i%97) * 0.03125
		}
	}
	routine := make([]uint16, 24)
	for i := range routine {
		routine[i] = uint16(i + 1)
	}
	return &Checkpoint{
		User:     "h04231",
		Activity: "tea-making",
		Routines: EncodedRoutines{routine},
		Policies: []CheckpointPolicy{{States: states, Actions: actions, Episodes: 240, Epsilon: 0.04, Q: q}},
	}
}

// materialize converts a Checkpoint into the live objects a tenant
// hands the saver.
func materialize(tb testing.TB, c *Checkpoint) ([]*rl.QTable, []TrainState) {
	tb.Helper()
	tables := make([]*rl.QTable, len(c.Policies))
	states := make([]TrainState, len(c.Policies))
	for i, p := range c.Policies {
		t := rl.NewQTable(p.States, p.Actions, 0)
		if err := t.SetValues(p.Q); err != nil {
			tb.Fatal(err)
		}
		tables[i] = t
		states[i] = TrainState{Episodes: p.Episodes, Epsilon: p.Epsilon}
	}
	return tables, states
}

// discardBackend swallows writes through a single reusable writer: the
// saver benchmarks and alloc budgets measure encode cost, not the
// filesystem.
type discardBackend struct{ w discardWriter }

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (discardWriter) Commit() error               { return nil }
func (discardWriter) Abort()                      {}

func (d *discardBackend) Get(string, func([]byte) error) ([]byte, error) { return nil, ErrNoCheckpoint }
func (d *discardBackend) Put(name string, data []byte, fsync bool) error {
	w, _ := d.PutStream(name, fsync)
	return putChunked(w, data)
}
func (d *discardBackend) PutStream(string, bool) (BlobWriter, error) { return &d.w, nil }
func (d *discardBackend) Enumerate(func(string)) error               { return nil }
func (d *discardBackend) Delete(string) error                        { return nil }

func BenchmarkCheckpointEncode(b *testing.B) {
	c := benchCheckpoint()
	tables, states := materialize(b, c)
	for _, format := range []Format{FormatBinary, FormatJSON} {
		format := format
		b.Run(format.String(), func(b *testing.B) {
			sv := MultiSaver{Format: format}
			back := &discardBackend{}
			if err := sv.Save(back, "h", c.User, c.Activity, c.Routines, tables, states, false); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sv.Save(back, "h", c.User, c.Activity, c.Routines, tables, states, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCheckpointDecode(b *testing.B) {
	c := benchCheckpoint()
	bin, err := AppendCheckpoint(nil, c)
	if err != nil {
		b.Fatal(err)
	}
	js := mustJSON(b, c)
	for _, tc := range []struct {
		name string
		data []byte
	}{{"binary", bin}, {"json", js}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var dec Checkpoint
			if err := DecodeCheckpoint(&dec, tc.data); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(tc.data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := DecodeCheckpoint(&dec, tc.data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
