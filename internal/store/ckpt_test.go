package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testCheckpoint builds a representative multi-policy checkpoint:
// mixed-magnitude Q values (including the zeros that dominate a young
// table), non-trivial routines, and annealing state.
func testCheckpoint() *Checkpoint {
	q1 := make([]float64, 3*4)
	for i := range q1 {
		q1[i] = float64(i) * 0.125
	}
	q2 := make([]float64, 2*2)
	q2[1] = -7.5
	q2[3] = math.Pi
	return &Checkpoint{
		User:     "Mr. Tanaka",
		Activity: "tea-making",
		Routines: EncodedRoutines{{1, 2, 3, 4}, {4, 3}},
		Policies: []CheckpointPolicy{
			{States: 3, Actions: 4, Episodes: 120, Epsilon: 0.05, Q: q1},
			{States: 2, Actions: 2, Episodes: 7, Epsilon: 0.9, Q: q2},
		},
	}
}

// checkpointsEqual compares semantically, with floats by bit pattern so
// NaN-carrying tables (the fuzzer produces them) still compare.
func checkpointsEqual(a, b *Checkpoint) bool {
	if a.User != b.User || a.Activity != b.Activity ||
		len(a.Routines) != len(b.Routines) || len(a.Policies) != len(b.Policies) {
		return false
	}
	for i := range a.Routines {
		if len(a.Routines[i]) != len(b.Routines[i]) {
			return false
		}
		for j := range a.Routines[i] {
			if a.Routines[i][j] != b.Routines[i][j] {
				return false
			}
		}
	}
	for i := range a.Policies {
		p, q := &a.Policies[i], &b.Policies[i]
		if p.States != q.States || p.Actions != q.Actions || p.Episodes != q.Episodes ||
			math.Float64bits(p.Epsilon) != math.Float64bits(q.Epsilon) || len(p.Q) != len(q.Q) {
			return false
		}
		for j := range p.Q {
			if math.Float64bits(p.Q[j]) != math.Float64bits(q.Q[j]) {
				return false
			}
		}
	}
	return true
}

func TestCheckpointRoundTrip(t *testing.T) {
	t.Parallel()
	cases := map[string]*Checkpoint{
		"multi": testCheckpoint(),
		"single": {
			User:     "u",
			Activity: "a",
			Policies: []CheckpointPolicy{{States: 1, Actions: 1, Epsilon: 0.3, Q: []float64{0}}},
		},
		"empty-names": {
			Policies: []CheckpointPolicy{{States: 2, Actions: 1, Episodes: 1, Q: []float64{1, 2}}},
		},
	}
	for name, c := range cases {
		c := c
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			data, err := AppendCheckpoint(nil, c)
			if err != nil {
				t.Fatal(err)
			}
			if f, ok := SniffFormat(data); !ok || f != FormatBinary {
				t.Fatalf("SniffFormat = %v, %v; want binary", f, ok)
			}
			var got Checkpoint
			if err := DecodeCheckpoint(&got, data); err != nil {
				t.Fatal(err)
			}
			if !checkpointsEqual(c, &got) {
				t.Fatalf("round trip mismatch:\n in %+v\nout %+v", c, &got)
			}
			// Decoding again into the same Checkpoint must reuse its slices
			// and still agree.
			if err := DecodeCheckpoint(&got, data); err != nil {
				t.Fatal(err)
			}
			if !checkpointsEqual(c, &got) {
				t.Fatalf("re-decode mismatch: %+v", &got)
			}
		})
	}
}

// TestCheckpointBinarySmallerThanJSON pins the point of the format: a
// young Q-table's checkpoint must shrink by a lot, not marginally.
func TestCheckpointBinarySmallerThanJSON(t *testing.T) {
	t.Parallel()
	c := testCheckpoint()
	bin, err := AppendCheckpoint(nil, c)
	if err != nil {
		t.Fatal(err)
	}
	jf := MultiPolicyFile{Version: multiPolicyVersion, User: c.User, Activity: c.Activity, Routines: c.Routines}
	for _, p := range c.Policies {
		jf.Policies = append(jf.Policies, PolicyFile{
			Version: policyVersion, User: c.User, Activity: c.Activity,
			States: p.States, Actions: p.Actions, Episodes: p.Episodes, Epsilon: p.Epsilon, Q: p.Q,
		})
	}
	js, err := json.Marshal(jf)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin)*2 > len(js) {
		t.Fatalf("binary %d bytes vs JSON %d: want at least 2x smaller", len(bin), len(js))
	}
}

func TestCheckpointJSONInterop(t *testing.T) {
	t.Parallel()
	c := testCheckpoint()

	jf := MultiPolicyFile{Version: multiPolicyVersion, User: c.User, Activity: c.Activity, Routines: c.Routines}
	for _, p := range c.Policies {
		jf.Policies = append(jf.Policies, PolicyFile{
			Version: policyVersion, User: c.User, Activity: c.Activity,
			States: p.States, Actions: p.Actions, Episodes: p.Episodes, Epsilon: p.Epsilon, Q: p.Q,
		})
	}
	js, err := json.MarshalIndent(jf, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := SniffFormat(js); !ok || f != FormatJSON {
		t.Fatalf("SniffFormat = %v, %v; want json", f, ok)
	}
	var got Checkpoint
	if err := DecodeCheckpoint(&got, js); err != nil {
		t.Fatal(err)
	}
	if !checkpointsEqual(c, &got) {
		t.Fatalf("JSON decode mismatch:\n in %+v\nout %+v", c, &got)
	}

	// A single-policy legacy file decodes to a routine-less checkpoint.
	pf := PolicyFile{Version: policyVersion, User: "u", Activity: "a", States: 2, Actions: 2, Episodes: 5, Epsilon: 0.1, Q: []float64{1, 2, 3, 4}}
	pjs, err := json.Marshal(pf)
	if err != nil {
		t.Fatal(err)
	}
	var single Checkpoint
	if err := DecodeCheckpoint(&single, pjs); err != nil {
		t.Fatal(err)
	}
	if len(single.Routines) != 0 || len(single.Policies) != 1 || single.Policies[0].Episodes != 5 {
		t.Fatalf("single-policy decode: %+v", &single)
	}

	// The canonical re-encoding of the JSON decode matches the binary
	// encoding of the original exactly: the invariant the fleet digest's
	// format independence rests on.
	bin, err := AppendCheckpoint(nil, c)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := AppendCheckpoint(nil, &got)
	if err != nil {
		t.Fatal(err)
	}
	if string(bin) != string(canon) {
		t.Fatal("canonical re-encoding of JSON decode differs from binary encoding")
	}
}

// mutate returns a copy of data with one edit applied.
func mutate(data []byte, edit func([]byte) []byte) []byte {
	cp := append([]byte(nil), data...)
	return edit(cp)
}

func TestCheckpointDecodeRejects(t *testing.T) {
	t.Parallel()
	valid, err := AppendCheckpoint(nil, testCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	// reframe wraps a hostile body in a valid magic/version/CRC frame, so
	// the case exercises field validation rather than the checksum.
	reframe := func(body ...byte) []byte {
		out := append([]byte{}, ckptMagic...)
		out = append(out, ckptVersion)
		out = append(out, body...)
		return appendCkptCRC(out)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"short":       []byte("CKP"),
		"bad magic":   mutate(valid, func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version": mutate(valid, func(b []byte) []byte { b[4] = 9; return appendCkptCRC(b[:len(b)-4]) }),
		"bad crc":     mutate(valid, func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }),
		"flipped bit": mutate(valid, func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }),
		"truncated":   valid[:len(valid)-5],
		"trailing":    mutate(valid, func(b []byte) []byte { return appendCkptCRC(append(b[:len(b)-4], 0)) }),
		// Count bombs: huge counts with no bytes behind them. Each must be
		// rejected by the remaining-bytes check, not by attempting the
		// allocation.
		"name bomb":    reframe(0xFF, 0xFF, 0xFF, 0x7F),
		"routine bomb": reframe(0, 0, 0xFF, 0xFF, 0x7F),
		"step bomb":    reframe(0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01),
		"policy bomb":  reframe(0, 0, 0, 0xFF, 0xFF, 0x7F),
		"dim bomb":     reframe(0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0x7F, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0),
		"no policies":  reframe(0, 0, 0, 0),
		// 1 routine but 2 policies.
		"routine/policy mismatch": reframe(0, 0, 1, 1, 1, 2, 1, 1, 0, 0, 0, 1, 1, 0, 0, 0),
		// Step ID beyond uint16.
		"step overflow": reframe(0, 0, 1, 1, 0xFF, 0xFF, 0x7F, 1, 1, 1, 0, 0, 0),
	}
	for name, data := range cases {
		data := data
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var c Checkpoint
			if err := DecodeCheckpoint(&c, data); err == nil {
				t.Fatalf("decode accepted %q blob", name)
			}
		})
	}
}

// appendCkptCRC frames body (which must already start with magic and
// version) with its trailing checksum, for building hostile test blobs.
func appendCkptCRC(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

func TestCheckpointEncodeRejects(t *testing.T) {
	t.Parallel()
	long := strings.Repeat("x", maxCkptName+1)
	cases := map[string]*Checkpoint{
		"no policies":      {User: "u"},
		"long user":        {User: long, Policies: []CheckpointPolicy{{States: 1, Actions: 1, Q: []float64{0}}}},
		"q shape mismatch": {Policies: []CheckpointPolicy{{States: 2, Actions: 2, Q: []float64{0}}}},
		"zero dim":         {Policies: []CheckpointPolicy{{States: 0, Actions: 1, Q: nil}}},
		"negative episodes": {Policies: []CheckpointPolicy{
			{States: 1, Actions: 1, Episodes: -1, Q: []float64{0}}}},
		"routines without parallel policies": {
			Routines: EncodedRoutines{{1}, {2}},
			Policies: []CheckpointPolicy{{States: 1, Actions: 1, Q: []float64{0}}},
		},
	}
	for name, c := range cases {
		c := c
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			buf := []byte("sentinel")
			out, err := AppendCheckpoint(buf, c)
			if err == nil {
				t.Fatal("encode accepted malformed checkpoint")
			}
			if string(out) != "sentinel" {
				t.Fatal("failed encode did not return dst unchanged")
			}
		})
	}
}

func TestParseAndSniffFormat(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		in   string
		want Format
	}{{"binary", FormatBinary}, {"json", FormatJSON}} {
		got, err := ParseFormat(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFormat(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("Format.String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("ParseFormat accepted yaml")
	}
	if _, ok := SniffFormat([]byte("  \n\tgarbage")); ok {
		t.Fatal("SniffFormat accepted garbage")
	}
	if f, ok := SniffFormat([]byte("  \n\t{\"version\":1}")); !ok || f != FormatJSON {
		t.Fatal("SniffFormat missed whitespace-prefixed JSON")
	}
}

// TestDirBackendMigration is the transparent JSON→binary migration
// end-to-end at the backend level: a legacy .json checkpoint loads, the
// next Put writes the current-era blob and removes the legacy files,
// and the content-canonical digest is unchanged throughout.
func TestDirBackendMigration(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	c := testCheckpoint()

	// A legacy fleet wrote <name>.json (plus a rotated backup).
	js := mustJSON(t, c)
	legacy := filepath.Join(dir, "tanaka.json")
	if err := os.WriteFile(legacy, js, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacy+BackupSuffix, js, 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got Checkpoint
	if err := LoadCheckpoint(b, "tanaka", &got); err != nil {
		t.Fatal(err)
	}
	if !checkpointsEqual(c, &got) {
		t.Fatalf("legacy load mismatch: %+v", &got)
	}
	before, err := AppendCheckpoint(nil, &got)
	if err != nil {
		t.Fatal(err)
	}

	// The next save upgrades: .ckpt appears, legacy files disappear.
	bin, err := AppendCheckpoint(nil, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("tanaka", bin, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tanaka.ckpt")); err != nil {
		t.Fatalf("no current-era blob after migration: %v", err)
	}
	for _, stale := range []string{legacy, legacy + BackupSuffix} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Fatalf("legacy file %s survived migration", stale)
		}
	}

	var after Checkpoint
	if err := LoadCheckpoint(b, "tanaka", &after); err != nil {
		t.Fatal(err)
	}
	canon, err := AppendCheckpoint(nil, &after)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(canon) {
		t.Fatal("canonical content changed across JSON→binary migration")
	}
}

func mustJSON(t testing.TB, c *Checkpoint) []byte {
	t.Helper()
	jf := MultiPolicyFile{Version: multiPolicyVersion, User: c.User, Activity: c.Activity, Routines: c.Routines}
	for _, p := range c.Policies {
		jf.Policies = append(jf.Policies, PolicyFile{
			Version: policyVersion, User: c.User, Activity: c.Activity,
			States: p.States, Actions: p.Actions, Episodes: p.Episodes, Epsilon: p.Epsilon, Q: p.Q,
		})
	}
	js, err := json.Marshal(jf)
	if err != nil {
		t.Fatal(err)
	}
	return js
}

// TestBackendContract runs the shared Backend semantics over both
// implementations: Put/Get round-trip, generation fallback on check
// failure, ErrNoCheckpoint only when nothing exists, Enumerate dedupe,
// Delete removing every generation.
func TestBackendContract(t *testing.T) {
	t.Parallel()
	backends := map[string]func(t *testing.T) Backend{
		"dir": func(t *testing.T) Backend {
			b, err := NewDirBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
		"mem": func(t *testing.T) Backend { return NewMemBackend() },
	}
	for name, mk := range backends {
		mk := mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b := mk(t)

			if _, err := b.Get("absent", nil); !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("Get(absent) = %v, want ErrNoCheckpoint", err)
			}

			v1, v2 := []byte("generation-1"), []byte("generation-2")
			if err := b.Put("h", v1, false); err != nil {
				t.Fatal(err)
			}
			got, err := b.Get("h", nil)
			if err != nil || string(got) != string(v1) {
				t.Fatalf("Get after first Put = %q, %v", got, err)
			}

			if err := b.Put("h", v2, true); err != nil {
				t.Fatal(err)
			}
			got, err = b.Get("h", nil)
			if err != nil || string(got) != string(v2) {
				t.Fatalf("Get after second Put = %q, %v", got, err)
			}

			// Check failure on the current generation falls back to the
			// previous one: decode-as-validation is what drives rotation.
			got, err = b.Get("h", func(data []byte) error {
				if string(data) == string(v2) {
					return fmt.Errorf("pretend torn")
				}
				return nil
			})
			if err != nil || string(got) != string(v1) {
				t.Fatalf("fallback Get = %q, %v; want previous generation", got, err)
			}

			// Both generations failing is an error, NOT ErrNoCheckpoint: a
			// checkpoint existed and was lost.
			if _, err := b.Get("h", func([]byte) error { return fmt.Errorf("reject all") }); err == nil || errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("all-generations-bad Get = %v, want non-ErrNoCheckpoint error", err)
			}

			// Streaming writes publish only on Commit.
			w, err := b.PutStream("s", false)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write([]byte("str")); err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write([]byte("eamed")); err != nil {
				t.Fatal(err)
			}
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := w.Commit(); err == nil {
				t.Fatal("double Commit succeeded")
			}
			got, err = b.Get("s", nil)
			if err != nil || string(got) != "streamed" {
				t.Fatalf("streamed Get = %q, %v", got, err)
			}

			// An aborted stream leaves no trace.
			w, err = b.PutStream("aborted", false)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write([]byte("partial")); err != nil {
				t.Fatal(err)
			}
			w.Abort()
			if _, err := b.Get("aborted", nil); !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("Get after Abort = %v, want ErrNoCheckpoint", err)
			}

			var names []string
			if err := b.Enumerate(func(n string) { names = append(names, n) }); err != nil {
				t.Fatal(err)
			}
			if len(names) != 2 {
				t.Fatalf("Enumerate = %v, want exactly {h, s}", names)
			}
			seen := map[string]bool{}
			for _, n := range names {
				seen[n] = true
			}
			if !seen["h"] || !seen["s"] {
				t.Fatalf("Enumerate = %v, want h and s", names)
			}

			if err := b.Delete("h"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get("h", nil); !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("Get after Delete = %v, want ErrNoCheckpoint (all generations gone)", err)
			}
		})
	}
}

// TestDirBackendPutChunked proves large blobs survive the chunked write
// path intact.
func TestDirBackendPutChunked(t *testing.T) {
	t.Parallel()
	b, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, PutChunk*3+17)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := b.Put("big", big, false); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("big", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(big) {
		t.Fatal("chunked write corrupted the blob")
	}
}

// TestKillMidCheckpointRecovery reconstructs every on-disk state a
// SIGKILL can leave a checkpoint wave in — a stray temp file, a rotated
// backup with the rename never issued, a torn primary — and proves Get
// recovers the last good generation byte-for-byte under the binary
// format.
func TestKillMidCheckpointRecovery(t *testing.T) {
	t.Parallel()
	good, err := AppendCheckpoint(nil, testCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	older := testCheckpoint()
	older.Policies[0].Episodes = 60
	goodOld, err := AppendCheckpoint(nil, older)
	if err != nil {
		t.Fatal(err)
	}
	check := func(data []byte) error {
		var c Checkpoint
		return DecodeCheckpoint(&c, data)
	}

	t.Run("killed before rotate", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		writeFiles(t, dir, map[string][]byte{
			"h.ckpt":     good,
			"h.ckpt.tmp": good[:len(good)/2], // partial next generation
		})
		b, err := NewDirBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Get("h", check)
		if err != nil || string(got) != string(good) {
			t.Fatalf("Get = %v; want the committed generation byte-for-byte", err)
		}
	})

	t.Run("killed between rotate and rename", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		writeFiles(t, dir, map[string][]byte{
			"h.ckpt.1":   good, // rotation happened...
			"h.ckpt.tmp": good, // ...but the rename never did
		})
		b, err := NewDirBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Get("h", check)
		if err != nil || string(got) != string(good) {
			t.Fatalf("Get = %v; want the rotated backup byte-for-byte", err)
		}
	})

	t.Run("torn primary falls back", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		torn := append([]byte{}, good...)
		torn[len(torn)/2] ^= 0x40 // CRC catches the flip
		writeFiles(t, dir, map[string][]byte{
			"h.ckpt":   torn,
			"h.ckpt.1": goodOld,
		})
		b, err := NewDirBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Get("h", check)
		if err != nil || string(got) != string(goodOld) {
			t.Fatalf("Get = %v; want the previous generation byte-for-byte", err)
		}
	})

	t.Run("next put clears the wreckage", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		writeFiles(t, dir, map[string][]byte{
			"h.ckpt":     good,
			"h.ckpt.tmp": good[:3],
		})
		b, err := NewDirBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Put("h", goodOld, false); err != nil {
			t.Fatal(err)
		}
		got, err := b.Get("h", check)
		if err != nil || string(got) != string(goodOld) {
			t.Fatalf("Get = %v; want the fresh generation", err)
		}
		if data, err := os.ReadFile(filepath.Join(dir, "h.ckpt"+BackupSuffix)); err != nil || string(data) != string(good) {
			t.Fatalf("previous generation not rotated intact: %v", err)
		}
		if _, err := os.Stat(filepath.Join(dir, "h.ckpt.tmp")); !os.IsNotExist(err) {
			t.Fatal("stray temp file survived the next Put")
		}
	})
}

func writeFiles(t *testing.T, dir string, files map[string][]byte) {
	t.Helper()
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
