package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// File extensions of the local-dir backend. The extension names the
// era, not the encoding: current-era blobs live in .ckpt files whatever
// their format (content sniffing decides), legacy pre-backend
// checkpoints in .json files, and either may have a rotated .1 backup.
const (
	ckptExt   = ".ckpt"
	legacyExt = ".json"
)

// fileBlobWriter is the local filesystem's BlobWriter and the single
// home of the store's crash-safety protocol: stream into a fixed
// <path>.tmp (one writer per path — shards own their tenants — so no
// CreateTemp name hunt), then on Commit optionally fsync, rotate the
// previous generation to path+BackupSuffix, and rename the temp into
// place. A reader that lands anywhere in that window sees either the
// previous generation (primary or just-rotated backup) or the complete
// new one, never a prefix. The temp file is only unlinked on the error
// path: after a successful rename there is nothing to remove, and an
// unconditional deferred Remove would cost a failing unlink syscall per
// checkpoint.
type fileBlobWriter struct {
	path, tmp string
	f         *os.File
	fsync     bool
	done      bool
	// onCommit, if non-nil, runs after the rename (DirBackend hooks
	// legacy-file cleanup here).
	onCommit func() error
}

func newFileBlobWriter(path string, fsync bool) (*fileBlobWriter, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: temp file: %w", err)
	}
	return &fileBlobWriter{path: path, tmp: tmp, f: f, fsync: fsync}, nil
}

func (w *fileBlobWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

func (w *fileBlobWriter) Commit() (err error) {
	if w.done {
		return fmt.Errorf("store: blob %s already committed", w.path)
	}
	w.done = true
	defer func() {
		if err != nil {
			os.Remove(w.tmp)
		}
	}()
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return fmt.Errorf("store: sync %s: %w", w.tmp, err)
		}
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", w.tmp, err)
	}
	if err := rotateBackup(w.path); err != nil {
		return err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		return fmt.Errorf("store: rename: %w", err)
	}
	if w.onCommit != nil {
		return w.onCommit()
	}
	return nil
}

func (w *fileBlobWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	os.Remove(w.tmp)
}

// readBlobAt reads one generation and runs the caller's check on it.
func readBlobAt(path string, check func([]byte) error) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	if check != nil {
		if err := check(data); err != nil {
			return nil, fmt.Errorf("store: %s: %w", path, err)
		}
	}
	return data, nil
}

// loadBlobFile reads the blob at path with the torn-read fallback: if
// the primary is missing, unreadable or fails check, the rotated backup
// (path+BackupSuffix) is tried before giving up. Two missing
// generations collapse to ErrNoCheckpoint; any other failure pair
// reports both attempts.
func loadBlobFile(path string, check func([]byte) error) ([]byte, error) {
	data, err := readBlobAt(path, check)
	if err == nil {
		return data, nil
	}
	data, berr := readBlobAt(path+BackupSuffix, check)
	if berr == nil {
		return data, nil
	}
	if errors.Is(err, fs.ErrNotExist) && errors.Is(berr, fs.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	return nil, fmt.Errorf("%w (backup: %v)", err, berr)
}

// DirBackend is the local-directory Backend: each blob is
// <dir>/<name>.ckpt with the crash-safe rotation fileBlobWriter
// implements, and checkpoints from before the backend era
// (<name>.json, plus its .1 backup) remain loadable as a last-resort
// generation. The legacy set is scanned once at construction and
// consulted from memory, so a Get for a never-persisted name costs
// exactly two failed opens and a Put never stats for stale files it
// does not need to clean. A successful Put removes the name's legacy
// files — the transparent JSON→binary migration: old checkpoint loads,
// next save upgrades, nothing is left behind.
type DirBackend struct {
	dir string

	mu sync.Mutex
	// legacy is the set of names with pre-backend .json-era files still
	// on disk. Guarded by mu; the flag is read before any I/O and
	// cleared after it, so the lock is never held across a syscall.
	legacy map[string]bool
}

// NewDirBackend creates dir if needed and scans it once for legacy
// checkpoint files.
func NewDirBackend(dir string) (*DirBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating checkpoint dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing checkpoint dir: %w", err)
	}
	b := &DirBackend{dir: dir, legacy: make(map[string]bool)}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if name, ok := strings.CutSuffix(strings.TrimSuffix(e.Name(), BackupSuffix), legacyExt); ok && name != "" {
			b.legacy[name] = true
		}
	}
	return b, nil
}

// Dir returns the backend's root directory.
func (d *DirBackend) Dir() string { return d.dir }

func (d *DirBackend) path(name string) string { return filepath.Join(d.dir, name+ckptExt) }

func (d *DirBackend) hasLegacy(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.legacy[name]
}

// Get implements the Backend fallback chain: current-era primary, its
// rotated backup, then — only for names the construction scan saw
// legacy files for — the .json-era pair.
func (d *DirBackend) Get(name string, check func([]byte) error) ([]byte, error) {
	data, err := loadBlobFile(d.path(name), check)
	if err == nil {
		return data, nil
	}
	if !d.hasLegacy(name) {
		return nil, err
	}
	data, lerr := loadBlobFile(filepath.Join(d.dir, name+legacyExt), check)
	if lerr == nil {
		return data, nil
	}
	switch {
	case errors.Is(err, ErrNoCheckpoint):
		return nil, lerr
	case errors.Is(lerr, ErrNoCheckpoint):
		return nil, err
	}
	return nil, fmt.Errorf("%w (legacy: %v)", err, lerr)
}

func (d *DirBackend) Put(name string, data []byte, fsync bool) error {
	w, err := d.PutStream(name, fsync)
	if err != nil {
		return err
	}
	return putChunked(w, data)
}

func (d *DirBackend) PutStream(name string, fsync bool) (BlobWriter, error) {
	w, err := newFileBlobWriter(d.path(name), fsync)
	if err != nil {
		return nil, err
	}
	if d.hasLegacy(name) {
		w.onCommit = func() error { return d.removeLegacy(name) }
	}
	return w, nil
}

// removeLegacy deletes a name's .json-era files after a current-era
// blob has been committed (the upgrade leg of the transparent
// migration). If a removal fails the legacy flag stays set, so loads
// keep consulting the files and the next Put retries the cleanup.
func (d *DirBackend) removeLegacy(name string) error {
	p := filepath.Join(d.dir, name+legacyExt)
	err := os.Remove(p)
	if berr := os.Remove(p + BackupSuffix); err == nil || os.IsNotExist(err) {
		err = berr
	}
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: removing legacy checkpoint: %w", err)
	}
	d.mu.Lock()
	delete(d.legacy, name)
	d.mu.Unlock()
	return nil
}

// Enumerate lists blob names: any file of either era, backups included,
// counts; the variants of one name (extensions, eras, backups) are
// deduped to a single visit.
func (d *DirBackend) Enumerate(fn func(name string)) error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: listing checkpoint dir: %w", err)
	}
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		base := strings.TrimSuffix(e.Name(), BackupSuffix)
		name, ok := strings.CutSuffix(base, ckptExt)
		if !ok {
			name, ok = strings.CutSuffix(base, legacyExt)
		}
		if !ok || name == "" || seen[name] {
			continue
		}
		seen[name] = true
		fn(name)
	}
	return nil
}

// Delete removes every generation of the blob, both eras.
func (d *DirBackend) Delete(name string) error {
	var first error
	for _, p := range [4]string{
		d.path(name), d.path(name) + BackupSuffix,
		filepath.Join(d.dir, name+legacyExt), filepath.Join(d.dir, name+legacyExt) + BackupSuffix,
	} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) && first == nil {
			first = fmt.Errorf("store: delete %s: %w", p, err)
		}
	}
	d.mu.Lock()
	delete(d.legacy, name)
	d.mu.Unlock()
	return first
}
