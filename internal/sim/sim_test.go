package sim

import (
	"strings"
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(3*time.Second, func() { order = append(order, 3) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestSameTimeEventsFireFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	s := New()
	var at time.Duration
	s.After(5*time.Second, func() {
		at = s.Now()
		s.After(2*time.Second, func() { at = s.Now() })
	})
	s.Run()
	if at != 7*time.Second {
		t.Errorf("final callback at %v, want 7s", at)
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Error("event with negative delay never fired")
	}
}

func TestReschedule(t *testing.T) {
	s := New()
	var fired []string
	e := s.After(time.Second, func() { fired = append(fired, "moved") })
	s.After(2*time.Second, func() { fired = append(fired, "fixed") })
	if !s.Reschedule(e, 3*time.Second) {
		t.Fatal("rescheduling a pending event returned false")
	}
	s.Run()
	// The moved timer fires after the 2s event, not at its original 1s.
	if want := []string{"fixed", "moved"}; len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Errorf("firing order = %v, want %v", fired, want)
	}
	// Fired and cancelled events cannot be revived.
	if s.Reschedule(e, 4*time.Second) {
		t.Error("rescheduling a fired event returned true")
	}
	c := s.After(time.Second, func() { t.Error("cancelled event fired") })
	c.Cancel()
	if s.Reschedule(c, 2*time.Second) {
		t.Error("rescheduling a cancelled event returned true")
	}
	if s.Reschedule(Timer{}, time.Second) {
		t.Error("rescheduling the zero Timer returned true")
	}
	s.Run()
}

// TestRescheduleTieOrder pins that a rescheduled event takes a fresh
// sequence number: landing on another event's time, it fires after it —
// exactly as a cancel + fresh After would.
func TestRescheduleTieOrder(t *testing.T) {
	s := New()
	var fired []string
	e := s.After(time.Second, func() { fired = append(fired, "moved") })
	s.After(2*time.Second, func() { fired = append(fired, "resident") })
	s.Reschedule(e, 2*time.Second)
	s.Run()
	if want := []string{"resident", "moved"}; len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Errorf("firing order = %v, want %v", fired, want)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(time.Second, func() { fired = true })
	if !e.Pending() {
		t.Error("Pending() = false before Cancel")
	}
	e.Cancel()
	if e.Pending() {
		t.Error("Pending() = true after Cancel")
	}
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	late := s.At(2*time.Second, func() { fired = true })
	s.At(1*time.Second, func() { late.Cancel() })
	s.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []int
	s.At(1*time.Second, func() { fired = append(fired, 1) })
	s.At(5*time.Second, func() { fired = append(fired, 5) })
	s.RunUntil(3 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Errorf("fired = %v", fired)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.Run()
	if len(fired) != 2 {
		t.Errorf("fired after Run = %v", fired)
	}
}

func TestEvery(t *testing.T) {
	s := New()
	count := 0
	var stop func()
	stop = s.Every(time.Second, func() {
		count++
		if count == 5 {
			stop()
		}
	})
	s.RunUntil(20 * time.Second)
	if count != 5 {
		t.Errorf("count = %d, want 5 (stopped after 5 ticks)", count)
	}
}

func TestEveryPanicsOnNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New().Every(0, func() {})
}

func TestPendingSkipsCancelled(t *testing.T) {
	s := New()
	e1 := s.At(time.Second, func() {})
	s.At(2*time.Second, func() {})
	e1.Cancel()
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending = %d, want 1", got)
	}
}

func TestRNGStreamsAreIndependentAndDeterministic(t *testing.T) {
	a1 := RNG(7, "alpha").Int63()
	a2 := RNG(7, "alpha").Int63()
	b := RNG(7, "beta").Int63()
	other := RNG(8, "alpha").Int63()
	if a1 != a2 {
		t.Error("same seed+stream should give identical streams")
	}
	if a1 == b {
		t.Error("different streams should differ")
	}
	if a1 == other {
		t.Error("different seeds should differ")
	}
}

func TestTimeline(t *testing.T) {
	var tl Timeline
	tl.Record(13*time.Second, "reminding", "Please use %s", "electronic-pot")
	tl.Record(0, "user", "takes tea-leaf")
	if tl.Len() != 2 {
		t.Fatalf("Len = %d", tl.Len())
	}
	entries := tl.Entries()
	if entries[0].At != 0 || entries[1].At != 13*time.Second {
		t.Errorf("entries not sorted: %+v", entries)
	}
	out := tl.String()
	if !strings.Contains(out, "electronic-pot") || !strings.Contains(out, "13.0s") {
		t.Errorf("rendered timeline missing content:\n%s", out)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty scheduler returned true")
	}
	e := s.At(time.Second, func() {})
	e.Cancel()
	if s.Step() {
		t.Error("Step with only cancelled events returned true")
	}
}
