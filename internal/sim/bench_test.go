package sim

import (
	"testing"
	"time"
)

// BenchmarkSchedulerAt measures the steady-state schedule-and-fire
// cycle: one At through the free list, one Step recycling the record.
// This is the timer core's hot loop — 0 allocs/op once warm (the
// AllocsPerRun gate in alloc_test.go locks it; this reports the time).
func BenchmarkSchedulerAt(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < 128; i++ {
		s.After(time.Duration(i)*time.Millisecond, fn)
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+time.Millisecond, fn)
		s.Step()
	}
}

// BenchmarkSchedulerReschedule measures re-arming a pending timer in
// place — the idle-watchdog pattern, and the reason Reschedule exists
// instead of cancel + fresh After.
func BenchmarkSchedulerReschedule(b *testing.B) {
	s := New()
	fn := func() {}
	tm := s.After(time.Hour, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reschedule(tm, s.Now()+time.Hour)
	}
}

// BenchmarkSchedulerCancelChurn measures the arm-and-disarm cycle under
// lazy deletion: schedule, cancel, schedule, fire — the pattern that
// exercises cancellation collection and the free list together.
func BenchmarkSchedulerCancelChurn(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < 128; i++ {
		s.After(time.Duration(i)*time.Millisecond, fn)
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := s.After(time.Minute, fn)
		tm.Cancel()
		s.After(time.Millisecond, fn)
		s.Step()
	}
}
