// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, a cancellable event queue, derived random-number
// streams and a timeline recorder.
//
// Every CoReDA experiment runs on this kernel instead of wall-clock time,
// so results are reproducible bit-for-bit from a seed.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int // heap index; -1 once fired or cancelled
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Scheduler is a single-threaded discrete-event scheduler with a virtual
// clock. It is intentionally not safe for concurrent use: determinism is
// the point.
type Scheduler struct {
	now  time.Duration
	heap eventHeap
	seq  uint64
}

// New returns a scheduler with the clock at zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// At schedules fn to run at virtual time t. Scheduling in the past (t <
// Now) panics: it indicates a simulation bug, not a recoverable condition.
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v, before now %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, e)
	return e
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Reschedule moves a still-pending event to virtual time t (clamped to
// now), keeping its callback — the zero-allocation way to re-arm a
// timer. The event takes a fresh sequence number, so same-time ordering
// is exactly as if it had been cancelled and scheduled anew. A fired or
// cancelled event cannot be revived: Reschedule returns false and the
// caller schedules a replacement with At/After.
func (s *Scheduler) Reschedule(e *Event, t time.Duration) bool {
	if e == nil || e.index < 0 || e.cancelled {
		return false
	}
	if t < s.now {
		t = s.now
	}
	e.at = t
	e.seq = s.seq
	s.seq++
	heap.Fix(&s.heap, e.index)
	return true
}

// Every schedules fn to run every interval, starting one interval from
// now, until the returned stop function is called.
func (s *Scheduler) Every(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic("sim: Every with non-positive interval")
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = s.After(interval, tick)
		}
	}
	pending = s.After(interval, tick)
	return func() {
		stopped = true
		if pending != nil {
			pending.Cancel()
		}
	}
}

// Step fires the next pending event, advancing the clock to its time. It
// returns false when no events remain.
func (s *Scheduler) Step() bool {
	for s.heap.Len() > 0 {
		e := heap.Pop(&s.heap).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with time <= deadline, then advances the clock to
// the deadline. Events scheduled later remain pending.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of uncancelled events in the queue.
func (s *Scheduler) Pending() int {
	n := 0
	for _, e := range s.heap {
		if !e.cancelled {
			n++
		}
	}
	return n
}

func (s *Scheduler) peek() (time.Duration, bool) {
	for s.heap.Len() > 0 {
		e := s.heap[0]
		if e.cancelled {
			heap.Pop(&s.heap)
			continue
		}
		return e.at, true
	}
	return 0, false
}

// eventHeap orders events by time, breaking ties by scheduling order so
// same-time events fire FIFO.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// RNG derives an independent random stream from a master seed and a stream
// name. Distinct names yield decorrelated streams, so adding a new
// consumer of randomness does not perturb existing ones.
func RNG(seed int64, stream string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, stream)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// TimelineEntry is one recorded event of a simulated session.
type TimelineEntry struct {
	At    time.Duration
	Actor string // "user", "sensing", "planning", "reminding", ...
	Text  string
}

// Timeline records annotated events of a session and renders them in the
// style of Figure 1 of the paper (a time-ordered table of ADL steps and
// reminders).
type Timeline struct {
	entries []TimelineEntry
}

// Record appends an entry.
func (tl *Timeline) Record(at time.Duration, actor, format string, args ...any) {
	tl.entries = append(tl.entries, TimelineEntry{At: at, Actor: actor, Text: fmt.Sprintf(format, args...)})
}

// Entries returns the entries sorted by time (stable for equal times).
func (tl *Timeline) Entries() []TimelineEntry {
	out := append([]TimelineEntry(nil), tl.entries...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len returns the number of recorded entries.
func (tl *Timeline) Len() int { return len(tl.entries) }

// String renders the timeline as a fixed-width table.
func (tl *Timeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s  %-10s  %s\n", "time", "actor", "event")
	fmt.Fprintf(&b, "%8s  %-10s  %s\n", "--------", "----------", strings.Repeat("-", 50))
	for _, e := range tl.Entries() {
		fmt.Fprintf(&b, "%7.1fs  %-10s  %s\n", e.At.Seconds(), e.Actor, e.Text)
	}
	return b.String()
}
