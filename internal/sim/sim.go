// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, a cancellable event queue, derived random-number
// streams and a timeline recorder.
//
// Every CoReDA experiment runs on this kernel instead of wall-clock time,
// so results are reproducible bit-for-bit from a seed.
//
// The timer core is allocation-free at steady state: event records live
// in a per-scheduler free list and are recycled as timers fire, the heap
// is hand-rolled (container/heap would box every push through `any`),
// and handles are generation-checked Timer values, so holding a handle
// to a fired timer can never reach into a recycled record. Cancelled
// events are lazily deleted — they stay in the heap until popped, or
// until they outnumber the live events, when one compaction sweep
// reclaims them all.
package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// event is one scheduled callback record. Records are owned by the
// scheduler's free list and recycled after firing, cancellation
// collection or compaction; gen is bumped on every recycle so stale
// Timer handles go inert instead of aliasing the next occupant.
type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int32 // heap index; -1 when not queued
	gen       uint32
	cancelled bool
}

// Timer is a value handle to a scheduled event. The zero Timer is inert:
// Cancel and Reschedule on it are no-ops, Pending reports false. A Timer
// stays valid until its event fires or its cancellation is collected;
// after that every method degrades to the inert behaviour, so callers
// may hold handles as long as they like.
type Timer struct {
	s   *Scheduler
	e   *event
	gen uint32
}

// valid reports whether the handle still names a live (pending or
// cancelled-but-uncollected) event.
func (t Timer) valid() bool { return t.e != nil && t.e.gen == t.gen }

// Pending reports whether the event is scheduled and has neither fired
// nor been cancelled.
func (t Timer) Pending() bool { return t.valid() && !t.e.cancelled }

// At returns the virtual time the event is scheduled for, or 0 if the
// timer is no longer pending.
func (t Timer) At() time.Duration {
	if !t.Pending() {
		return 0
	}
	return t.e.at
}

// Cancel prevents a pending event from firing. Cancelling a fired,
// already-cancelled or zero Timer is a no-op. The event record is
// reclaimed lazily (on pop or compaction); its callback is dropped
// immediately so captured state is not pinned until then.
func (t Timer) Cancel() {
	s, e := t.s, t.e
	if s == nil || !t.valid() || e.cancelled {
		return
	}
	e.cancelled = true
	e.fn = nil
	s.live--
	s.ncancel++
	s.maybeCompact()
}

// Scheduler is a single-threaded discrete-event scheduler with a virtual
// clock. It is intentionally not safe for concurrent use: determinism is
// the point.
type Scheduler struct {
	now  time.Duration
	seq  uint64
	heap []*event // pending + lazily-deleted cancelled events, min (at, seq) at [0]
	free []*event // recycled records; At pops here before allocating
	// live is the uncancelled event count — Pending() in O(1), and the
	// compaction trigger's denominator. ncancel counts the cancelled
	// events still occupying heap slots.
	live    int
	ncancel int
}

// New returns a scheduler with the clock at zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// At schedules fn to run at virtual time t. Scheduling in the past (t <
// Now) panics: it indicates a simulation bug, not a recoverable condition.
//
//coreda:hotpath
func (s *Scheduler) At(t time.Duration, fn func()) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v, before now %v", t, s.now))
	}
	e := s.alloc()
	e.at = t
	e.seq = s.seq
	e.fn = fn
	s.seq++
	s.live++
	s.push(e)
	return Timer{s: s, e: e, gen: e.gen}
}

// After schedules fn to run d from now.
//
//coreda:hotpath
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Reschedule moves a still-pending timer to virtual time t (clamped to
// now), keeping its callback — the zero-allocation way to re-arm a
// timer. The event takes a fresh sequence number, so same-time ordering
// is exactly as if it had been cancelled and scheduled anew. A fired or
// cancelled timer cannot be revived: Reschedule returns false and the
// caller schedules a replacement with At/After.
//
//coreda:hotpath
func (s *Scheduler) Reschedule(t Timer, at time.Duration) bool {
	e := t.e
	if e == nil || t.s != s || e.gen != t.gen || e.cancelled || e.index < 0 {
		return false
	}
	if at < s.now {
		at = s.now
	}
	e.at = at
	e.seq = s.seq
	s.seq++
	s.fix(int(e.index))
	return true
}

// Every schedules fn to run every interval, starting one interval from
// now, until the returned stop function is called.
func (s *Scheduler) Every(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic("sim: Every with non-positive interval")
	}
	stopped := false
	var tick func()
	var pending Timer
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = s.After(interval, tick)
		}
	}
	pending = s.After(interval, tick)
	return func() {
		stopped = true
		pending.Cancel()
	}
}

// Step fires the next pending event, advancing the clock to its time. It
// returns false when no events remain. The fired event's record is
// recycled before its callback runs, so the callback (or anyone holding
// the handle) sees a fired — inert — Timer, never a live alias of the
// record's next occupant.
//
//coreda:hotpath
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		e := s.pop()
		if e.cancelled {
			s.ncancel--
			s.release(e)
			continue
		}
		s.live--
		fn := e.fn
		s.now = e.at
		s.release(e)
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with time <= deadline, then advances the clock to
// the deadline. Events scheduled later remain pending.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for {
		next, ok := s.NextDue()
		if !ok || next > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of uncancelled events in the queue, in
// O(1): the scheduler tracks the live count across push, pop and cancel
// instead of scanning the heap.
func (s *Scheduler) Pending() int { return s.live }

// NextDue returns the virtual time of the earliest pending event. ok is
// false when no events are pending. Cancelled events sitting on top of
// the heap are collected on the way, so the cost is amortized O(1) plus
// one heap pop per collected cancellation — this is the primitive the
// fleet's due-time tenant index is built on.
//
//coreda:hotpath
func (s *Scheduler) NextDue() (time.Duration, bool) {
	for len(s.heap) > 0 {
		e := s.heap[0]
		if !e.cancelled {
			return e.at, true
		}
		s.pop()
		s.ncancel--
		s.release(e)
	}
	return 0, false
}

// alloc hands out an event record, recycling from the free list when it
// can. The cold grow path is kept out of line so the hot schedulers stay
// escape-free.
func (s *Scheduler) alloc() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return newEvent()
}

// newEvent is the slab-miss path: the only place a record is heap
// allocated. Once the working set is warm, At never comes here again.
// Kept out of line so its allocation is not attributed to the hot
// schedulers by inlining (the hotalloc gate judges escapes by position).
//
//go:noinline
func newEvent() *event { return &event{} }

// release recycles a record onto the free list, invalidating every
// outstanding handle to it via the generation bump.
func (s *Scheduler) release(e *event) {
	e.gen++
	e.fn = nil
	e.cancelled = false
	e.index = -1
	s.free = append(s.free, e)
}

// minCompact is the heap size below which lazy-deleted cancellations are
// left to be collected by pops: sweeping a tiny heap buys nothing.
const minCompact = 32

// maybeCompact sweeps cancelled events out of the heap once they
// outnumber the live ones — lazy deletion's memory bound. Without it a
// cancel-heavy workload (armed-and-disarmed watchdogs) would grow the
// heap with corpses until the next quiet drain.
func (s *Scheduler) maybeCompact() {
	if len(s.heap) < minCompact || s.ncancel <= len(s.heap)/2 {
		return
	}
	j := 0
	for i := 0; i < len(s.heap); i++ {
		e := s.heap[i]
		if e.cancelled {
			s.release(e)
			continue
		}
		s.heap[j] = e
		e.index = int32(j)
		j++
	}
	for k := j; k < len(s.heap); k++ {
		s.heap[k] = nil
	}
	s.heap = s.heap[:j]
	for i := j/2 - 1; i >= 0; i-- {
		s.down(i)
	}
	s.ncancel = 0
}

// less orders events by time, breaking ties by scheduling order so
// same-time events fire FIFO.
func (s *Scheduler) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends e and restores the heap invariant. Hand-rolled (as are
// pop/fix) because container/heap funnels every element through `any`,
// which is both an interface conversion per operation and a reason the
// compiler cannot inline the comparisons.
func (s *Scheduler) push(e *event) {
	e.index = int32(len(s.heap))
	s.heap = append(s.heap, e)
	s.up(len(s.heap) - 1)
}

// pop removes and returns the minimum (at, seq) event.
func (s *Scheduler) pop() *event {
	e := s.heap[0]
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap[0].index = 0
	s.heap[n] = nil
	s.heap = s.heap[:n]
	if n > 0 {
		s.down(0)
	}
	e.index = -1
	return e
}

// fix restores the invariant after the element at i changed its key.
func (s *Scheduler) fix(i int) {
	if !s.down(i) {
		s.up(i)
	}
}

func (s *Scheduler) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[parent]) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

// down sifts i toward the leaves; it reports whether i moved.
func (s *Scheduler) down(i int) bool {
	start := i
	n := len(s.heap)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s.less(s.heap[r], s.heap[child]) {
			child = r
		}
		if !s.less(s.heap[child], s.heap[i]) {
			break
		}
		s.swap(i, child)
		i = child
	}
	return i > start
}

func (s *Scheduler) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].index = int32(i)
	s.heap[j].index = int32(j)
}

// RNG derives an independent random stream from a master seed and a stream
// name. Distinct names yield decorrelated streams, so adding a new
// consumer of randomness does not perturb existing ones.
func RNG(seed int64, stream string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, stream)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// TimelineEntry is one recorded event of a simulated session.
type TimelineEntry struct {
	At    time.Duration
	Actor string // "user", "sensing", "planning", "reminding", ...
	Text  string
}

// Timeline records annotated events of a session and renders them in the
// style of Figure 1 of the paper (a time-ordered table of ADL steps and
// reminders).
type Timeline struct {
	entries []TimelineEntry
}

// Record appends an entry.
func (tl *Timeline) Record(at time.Duration, actor, format string, args ...any) {
	tl.entries = append(tl.entries, TimelineEntry{At: at, Actor: actor, Text: fmt.Sprintf(format, args...)})
}

// Entries returns the entries sorted by time (stable for equal times).
func (tl *Timeline) Entries() []TimelineEntry {
	out := append([]TimelineEntry(nil), tl.entries...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len returns the number of recorded entries.
func (tl *Timeline) Len() int { return len(tl.entries) }

// String renders the timeline as a fixed-width table.
func (tl *Timeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s  %-10s  %s\n", "time", "actor", "event")
	fmt.Fprintf(&b, "%8s  %-10s  %s\n", "--------", "----------", strings.Repeat("-", 50))
	for _, e := range tl.Entries() {
		fmt.Fprintf(&b, "%7.1fs  %-10s  %s\n", e.At.Seconds(), e.Actor, e.Text)
	}
	return b.String()
}
