package sim

import (
	"testing"
	"time"

	"coreda/internal/testutil"
)

// TestSchedulerAllocBudgets locks the timer-core hot paths to zero
// allocations at steady state with testing.AllocsPerRun: once the free
// list and heap are warm, At/After + Step cycles, Reschedule re-arms and
// Cancel + re-schedule churn must not touch the heap at all. This is the
// allocation contract the fleet's idle-tenant budget is built on; it is
// enforced by the no-race alloc pass in scripts/check.sh.
func TestSchedulerAllocBudgets(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc budgets are enforced by the no-race pass (scripts/check.sh)")
	}
	s := New()
	fn := func() {}
	// Warm up: grow the heap, the free list and their backing arrays.
	for i := 0; i < 128; i++ {
		s.After(time.Duration(i)*time.Millisecond, fn)
	}
	s.Run()

	if got := testing.AllocsPerRun(1000, func() {
		s.After(time.Millisecond, fn)
		s.Step()
	}); got != 0 {
		t.Errorf("After+Step allocates %.1f/op at steady state, want 0", got)
	}

	if got := testing.AllocsPerRun(1000, func() {
		s.At(s.Now()+time.Millisecond, fn)
		s.Step()
	}); got != 0 {
		t.Errorf("At+Step allocates %.1f/op at steady state, want 0", got)
	}

	pending := s.After(time.Hour, fn)
	if got := testing.AllocsPerRun(1000, func() {
		if !s.Reschedule(pending, s.Now()+time.Hour) {
			t.Fatal("Reschedule of a pending timer failed")
		}
	}); got != 0 {
		t.Errorf("Reschedule allocates %.1f/op, want 0", got)
	}
	pending.Cancel()

	// Cancel-heavy churn: arm-and-disarm (the idle-watchdog pattern) must
	// recycle records through the free list, not allocate fresh ones —
	// including across lazy-deletion collection.
	if got := testing.AllocsPerRun(1000, func() {
		tm := s.After(time.Minute, fn)
		tm.Cancel()
		s.After(time.Millisecond, fn)
		s.Step()
	}); got != 0 {
		t.Errorf("cancel churn allocates %.1f/op at steady state, want 0", got)
	}
}

// TestPendingAllocFreeAndO1 pins the O(1) Pending contract: the count is
// a maintained counter, correct under cancel-heavy churn, double
// cancels, compaction sweeps and collection, and reading it never
// allocates or perturbs the queue.
func TestPendingAllocFreeAndO1(t *testing.T) {
	s := New()
	fired := 0
	var timers []Timer
	const n = 1000
	for i := 0; i < n; i++ {
		timers = append(timers, s.After(time.Duration(i+1)*time.Millisecond, func() { fired++ }))
	}
	if got := s.Pending(); got != n {
		t.Fatalf("Pending = %d, want %d", got, n)
	}
	// Cancel 90% — far past the compaction threshold, so the lazy
	// deletions are swept mid-loop and the counter must survive it.
	for i := 0; i < n*9/10; i++ {
		timers[i].Cancel()
	}
	if got := s.Pending(); got != n/10 {
		t.Fatalf("Pending after cancels = %d, want %d", got, n/10)
	}
	// Double cancels (and cancels through stale handles) must not
	// decrement the counter again.
	for i := 0; i < n/2; i++ {
		timers[i].Cancel()
	}
	if got := s.Pending(); got != n/10 {
		t.Fatalf("Pending after double cancels = %d, want %d", got, n/10)
	}
	if !testutil.RaceEnabled {
		if got := testing.AllocsPerRun(100, func() { _ = s.Pending() }); got != 0 {
			t.Errorf("Pending allocates %.1f/op, want 0", got)
		}
	}
	s.Run()
	if fired != n/10 {
		t.Errorf("fired %d events, want %d (cancelled ones must not fire)", fired, n/10)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending after Run = %d, want 0", got)
	}
}
