package sim

import (
	"math"
	"testing"
)

// The RNG stream contract is the property every coreda-vet analyzer
// ultimately protects: the same (seed, stream) pair must reproduce the
// same sequence bit-for-bit, while distinct stream labels — or distinct
// seeds — must yield decorrelated sequences, so adding a new consumer of
// randomness never perturbs existing ones.

const rngDraws = 4096

func drawFloats(seed int64, stream string, n int) []float64 {
	r := RNG(seed, stream)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// pearson returns the sample correlation coefficient of x and y.
func pearson(x, y []float64) float64 {
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(len(x)), sy/float64(len(y))
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	return cov / math.Sqrt(vx*vy)
}

func TestRNGReproducible(t *testing.T) {
	t.Parallel()
	cases := []struct {
		seed   int64
		stream string
	}{
		{1, "persona"},
		{1, "signal"},
		{7, "ablation/reward/paper 100:50"},
		{-3, ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.stream, func(t *testing.T) {
			t.Parallel()
			a := drawFloats(tc.seed, tc.stream, rngDraws)
			b := drawFloats(tc.seed, tc.stream, rngDraws)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d stream %q: draw %d differs between runs: %v vs %v",
						tc.seed, tc.stream, i, a[i], b[i])
				}
			}
		})
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name           string
		seedA, seedB   int64
		streamA, strmB string
	}{
		{"different streams", 1, 1, "persona", "signal"},
		{"prefix streams", 1, 1, "rest", "rest-1"},
		{"label vs suffixed label", 42, 42, "medium", "medium/noise"},
		{"different seeds same stream", 1, 2, "persona", "persona"},
		{"seed/stream boundary ambiguity", 1, 12, "2/x", "/x"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			a := drawFloats(tc.seedA, tc.streamA, rngDraws)
			b := drawFloats(tc.seedB, tc.strmB, rngDraws)

			same := 0
			for i := range a {
				if a[i] == b[i] {
					same++
				}
			}
			if same > rngDraws/100 {
				t.Errorf("streams share %d/%d draws: sequences are not independent", same, rngDraws)
			}
			if r := pearson(a, b); math.Abs(r) > 0.05 {
				t.Errorf("correlation %.4f between streams, want |r| <= 0.05", r)
			}
		})
	}
}
