package sim

import (
	"testing"
	"time"
)

// refSched is a deliberately naive reference scheduler: a flat slice of
// records, the next event found by linear scan over (at, seq). No free
// list, no lazy deletion, no heap — nothing shared with the real
// implementation beyond the contract. The differential test drives both
// with the same seeded operation stream and demands identical fire
// order, clock positions and pending counts.
type refSched struct {
	now time.Duration
	seq uint64
	evs []*refEvent
}

type refEvent struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

func (r *refSched) at(t time.Duration, fn func()) *refEvent {
	e := &refEvent{at: t, seq: r.seq, fn: fn}
	r.seq++
	r.evs = append(r.evs, e)
	return e
}

func (r *refSched) after(d time.Duration, fn func()) *refEvent {
	if d < 0 {
		d = 0
	}
	return r.at(r.now+d, fn)
}

func (e *refEvent) cancel() {
	if !e.fired {
		e.cancelled = true
	}
}

func (r *refSched) reschedule(e *refEvent, at time.Duration) bool {
	if e.fired || e.cancelled {
		return false
	}
	if at < r.now {
		at = r.now
	}
	e.at = at
	e.seq = r.seq
	r.seq++
	return true
}

func (r *refSched) next() *refEvent {
	var best *refEvent
	for _, e := range r.evs {
		if e.fired || e.cancelled {
			continue
		}
		if best == nil || e.at < best.at || (e.at == best.at && e.seq < best.seq) {
			best = e
		}
	}
	return best
}

func (r *refSched) step() bool {
	e := r.next()
	if e == nil {
		return false
	}
	e.fired = true
	r.now = e.at
	e.fn()
	return true
}

func (r *refSched) runUntil(deadline time.Duration) {
	for {
		e := r.next()
		if e == nil || e.at > deadline {
			break
		}
		r.step()
	}
	if r.now < deadline {
		r.now = deadline
	}
}

func (r *refSched) pending() int {
	n := 0
	for _, e := range r.evs {
		if !e.fired && !e.cancelled {
			n++
		}
	}
	return n
}

// TestSchedulerMatchesNaiveReference drives the real scheduler and the
// naive reference through the same seeded stream of schedule / cancel /
// reschedule / step / run-until operations — including callbacks that
// schedule follow-up events mid-fire — and requires bit-identical fire
// order throughout. This is the regression net under the free-list,
// lazy-deletion and compaction machinery: any divergence in recycling,
// tie-breaking or cancellation collection shows up as a mismatched log.
func TestSchedulerMatchesNaiveReference(t *testing.T) {
	rng := RNG(42, "sim/differential")
	s := New()
	ref := &refSched{}

	var gotLog, wantLog []int
	var timers []Timer
	var refs []*refEvent
	nextID := 0

	// schedule adds a paired event to both schedulers. With probability
	// ~1/4 the callback chains: when fired it schedules a follow-up —
	// exercising scheduling from inside Step, where the firing record has
	// just been recycled.
	var schedule func(d time.Duration, chain bool)
	schedule = func(d time.Duration, chain bool) {
		id := nextID
		nextID++
		if chain {
			timers = append(timers, s.After(d, func() {
				gotLog = append(gotLog, id)
				s.After(d/2+time.Millisecond, func() { gotLog = append(gotLog, -id) })
			}))
			refs = append(refs, ref.after(d, func() {
				wantLog = append(wantLog, id)
				ref.after(d/2+time.Millisecond, func() { wantLog = append(wantLog, -id) })
			}))
			return
		}
		timers = append(timers, s.After(d, func() { gotLog = append(gotLog, id) }))
		refs = append(refs, ref.after(d, func() { wantLog = append(wantLog, id) }))
	}

	check := func(op int) {
		t.Helper()
		if s.Now() != ref.now {
			t.Fatalf("op %d: Now = %v, reference %v", op, s.Now(), ref.now)
		}
		if s.Pending() != ref.pending() {
			t.Fatalf("op %d: Pending = %d, reference %d", op, s.Pending(), ref.pending())
		}
		if len(gotLog) != len(wantLog) {
			t.Fatalf("op %d: fired %d events, reference %d", op, len(gotLog), len(wantLog))
		}
		for i := range gotLog {
			if gotLog[i] != wantLog[i] {
				t.Fatalf("op %d: fire order diverges at %d: got %v..., want %v...", op, i, gotLog[i], wantLog[i])
			}
		}
	}

	const ops = 6000
	for op := 0; op < ops; op++ {
		switch rng.Intn(12) {
		case 0, 1, 2, 3:
			schedule(time.Duration(rng.Intn(500))*time.Millisecond, rng.Intn(4) == 0)
		case 4, 5:
			// Cancel a random handle — often one that has already fired
			// (inert for the real Timer, a no-op on the fired reference).
			if len(timers) > 0 {
				i := rng.Intn(len(timers))
				timers[i].Cancel()
				refs[i].cancel()
			}
		case 6:
			if len(timers) > 0 {
				i := rng.Intn(len(timers))
				at := s.Now() + time.Duration(rng.Intn(500))*time.Millisecond
				got := s.Reschedule(timers[i], at)
				want := ref.reschedule(refs[i], at)
				if got != want {
					t.Fatalf("op %d: Reschedule = %v, reference %v", op, got, want)
				}
			}
		case 7:
			if len(timers) > 0 {
				i := rng.Intn(len(timers))
				got, want := timers[i].Pending(), !refs[i].fired && !refs[i].cancelled
				if got != want {
					t.Fatalf("op %d: Pending() = %v, reference %v", op, got, want)
				}
			}
		case 8, 9:
			to := s.Now() + time.Duration(rng.Intn(800))*time.Millisecond
			s.RunUntil(to)
			ref.runUntil(to)
		case 10:
			got, want := s.Step(), ref.step()
			if got != want {
				t.Fatalf("op %d: Step = %v, reference %v", op, got, want)
			}
		case 11:
			// Nothing: just the invariant check below.
		}
		check(op)
	}
	s.Run()
	for ref.step() {
	}
	check(ops)
	if len(gotLog) == 0 {
		t.Fatal("differential run fired no events; the stream is not exercising anything")
	}
}
