// Package queue is CoReDA's control-plane work queue: an in-process
// priority queue for the blocking jobs the shard event loops used to run
// inline — eviction writebacks, checkpoint waves, replica pushes. A
// producer enqueues typed jobs between batches and then drains the queue
// at a control boundary; the drain fans the jobs out over a bounded
// worker pool, with per-class permits capping how many jobs of one kind
// run at once (e.g. one in-flight push per peer link).
//
// Determinism contract (the property the fleet digest gates rely on):
// dispatch order is a pure function of the enqueued jobs — stable
// priority order with FIFO tie-break on enqueue sequence — and every
// Done callback runs on the *draining* goroutine, in dispatch order,
// after all jobs finish. Concurrency therefore only perturbs the
// wall-clock interleaving of Run bodies, which the producer must keep
// order-independent (the fleet's jobs write distinct files whose bytes
// are a pure function of tenant state). Failure handling is
// deterministic too: retries come from internal/retry with a bounded
// attempt budget, and injected faults (chaos soaks) are drawn on the
// enqueueing goroutine so the draw sequence matches the enqueue
// sequence; an injected fault consumes attempts but never the last one,
// so injection can never change a job's outcome — only its retry count.
//
// The package is part of the shard-scoped concurrency surface:
// coreda-vet checks it for shard affinity (the drain's worker dispatch
// is the one sanctioned spawner), lock discipline (Drain itself is a
// registered blocking call — callers must not hold a mutex across a
// drain boundary) and nondeterminism (no wall clock — drain latency
// comes from an injected Clock).
package queue

import (
	"errors"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"coreda/internal/retry"
	"coreda/internal/sim"
)

// Class names a kind of job for permit accounting: all jobs of one
// class share one concurrency limit (Config.Permits).
type Class string

// InjectFunc is the chaos hook: called once per Enqueue, on the
// enqueueing goroutine, it returns how many of the job's initial
// attempts fail with ErrInjected. The queue caps the result at
// attempts-1, so injection exercises the retry path without ever
// changing a job's outcome. See chaos.Plan.JobInjector.
type InjectFunc func(class Class, label string) int

// ErrInjected is the error injected attempts fail with.
var ErrInjected = errors.New("queue: injected fault")

// Job is one unit of control-plane work.
type Job struct {
	// Class is the permit class (empty is a valid class of its own).
	Class Class
	// Priority orders dispatch: lower runs first; equal priorities run
	// in enqueue (FIFO) order.
	Priority int
	// Label identifies the job in injection hooks (conventionally the
	// household or peer the job is about).
	Label string
	// Run does the work, possibly several times (retries). It executes
	// on a worker goroutine and must not touch producer-owned state;
	// everything it needs is captured by value or owned by the job.
	Run func() error
	// Done, if non-nil, receives the job's final error (nil on
	// success). It runs on the goroutine that called Drain, in dispatch
	// order, after every job of the drain finished — the sanctioned
	// place to update producer-owned state (maps, counters, tenants).
	Done func(error)
}

// Config parameterizes a Queue. The zero value is a serial queue: one
// worker, no permits, single-attempt jobs.
type Config struct {
	// Workers bounds how many jobs run concurrently during a drain.
	// Zero or negative means 1 (serial, inline on the drain caller).
	Workers int
	// Permits caps in-flight jobs per class; a class absent from the
	// map falls back to DefaultPermit.
	Permits map[Class]int
	// DefaultPermit is the per-class cap for classes not in Permits.
	// Zero means unlimited (bounded only by Workers).
	DefaultPermit int
	// Retry is the per-job retry schedule (internal/retry). The zero
	// policy makes exactly one attempt.
	Retry retry.Policy
	// Seed and Stream name the sim.RNG streams the retry jitter is
	// drawn from (one independent stream per worker:
	// "<Stream>/worker/<i>", Stream defaulting to "queue"). Jitter only
	// shapes backoff sleeps, never outcomes or dispatch order.
	Seed   int64
	Stream string
	// Inject is the chaos hook (nil injects nothing).
	Inject InjectFunc
	// Clock supplies the instants drain latency is measured between.
	// Nil disables latency accounting — the queue itself never reads
	// the wall clock (nondeterminism discipline); callers that want
	// real latency inject a monotonic clock.
	Clock func() time.Duration
}

// Stats counts queue activity. Snapshot via Queue.Stats.
type Stats struct {
	// Enqueued counts jobs accepted; Completed and Failed partition
	// the jobs whose drain finished by final outcome.
	Enqueued  int
	Completed int
	Failed    int
	// Retried counts extra attempts beyond each job's first (both real
	// failures and injected ones); Injected counts attempts failed by
	// the chaos hook.
	Retried  int
	Injected int
	// Drains counts Drain calls that found work; DrainTime is their
	// cumulative duration on Config.Clock (zero when Clock is nil).
	Drains    int
	DrainTime time.Duration
	// Depth is the number of jobs currently enqueued and not yet
	// drained; MaxDepth is the high-water mark.
	Depth    int
	MaxDepth int
}

// job is the internal representation: the Job plus its FIFO sequence,
// injection budget and outcome.
type job struct {
	Job
	seq      int
	failN    int // initial attempts to fail (injection), already capped
	err      error
	attempts int
}

// Queue is a control-plane work queue. Enqueue and Drain may be called
// from any goroutine, but the intended shape is one producer that owns
// the queue and alternates enqueue phases with drain boundaries (a
// shard loop, a Sync barrier). Create with New.
type Queue struct {
	cfg      Config
	attempts int // normalized retry budget

	mu      sync.Mutex
	pending []*job
	seq     int
	stats   Stats
	rngs    []*rand.Rand // lazily built per-worker jitter streams
}

// New builds a queue; the config is normalized, never rejected.
func New(cfg Config) *Queue {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Stream == "" {
		cfg.Stream = "queue"
	}
	attempts := cfg.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	return &Queue{cfg: cfg, attempts: attempts}
}

// Enqueue accepts one job for the next drain. The injection hook (if
// any) is consulted here, on the caller's goroutine, so the draw
// sequence is the enqueue sequence.
func (q *Queue) Enqueue(j Job) {
	if j.Run == nil {
		return
	}
	failN := 0
	if q.cfg.Inject != nil {
		failN = q.cfg.Inject(j.Class, j.Label)
		if max := q.attempts - 1; failN > max {
			failN = max
		}
		if failN < 0 {
			failN = 0
		}
	}
	q.mu.Lock()
	q.pending = append(q.pending, &job{Job: j, seq: q.seq, failN: failN})
	q.seq++
	q.stats.Enqueued++
	q.stats.Depth = len(q.pending)
	if q.stats.Depth > q.stats.MaxDepth {
		q.stats.MaxDepth = q.stats.Depth
	}
	q.mu.Unlock()
}

// Depth reports how many jobs are waiting for the next drain.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Stats snapshots the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Drain runs every pending job and returns the first error in dispatch
// order (nil if all succeeded). Jobs are dispatched in stable
// (priority, FIFO) order over at most Workers goroutines, gated by the
// per-class permits; when the effective worker count is one the jobs
// run inline on the caller with no goroutines at all. Done callbacks
// then run on the caller, in dispatch order. Drain returns when every
// job and callback has finished — it is a synchronization point, and
// the only place the queue spawns.
func (q *Queue) Drain() error {
	q.mu.Lock()
	jobs := q.pending
	q.pending = nil
	q.stats.Depth = 0
	if len(jobs) > 0 {
		q.stats.Drains++
	}
	q.mu.Unlock()
	if len(jobs) == 0 {
		return nil
	}

	var start time.Duration
	if q.cfg.Clock != nil {
		start = q.cfg.Clock()
	}

	// Stable sort: priority first, enqueue sequence breaks ties. The
	// sort is over the drained snapshot only, so a job enqueued by a
	// Done callback lands in the next drain.
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].Priority != jobs[k].Priority {
			return jobs[i].Priority < jobs[k].Priority
		}
		return jobs[i].seq < jobs[k].seq
	})

	workers := q.cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		rng := q.workerRNG(0)
		for _, j := range jobs {
			q.runJob(j, rng)
		}
	} else {
		q.dispatch(jobs, workers)
	}

	q.mu.Lock()
	for _, j := range jobs {
		if j.err != nil {
			q.stats.Failed++
		} else {
			q.stats.Completed++
		}
		q.stats.Retried += j.attempts - 1
	}
	if q.cfg.Clock != nil {
		q.stats.DrainTime += q.cfg.Clock() - start
	}
	q.mu.Unlock()

	var first error
	for _, j := range jobs {
		if first == nil && j.err != nil {
			first = j.err
		}
		if j.Done != nil {
			j.Done(j.err)
		}
	}
	return first
}

// dispatch feeds the sorted jobs to a worker pool in order, holding a
// job back while its class is at its permit. Completions are collected
// on a buffered channel sized for every job, so the permit wait can
// never deadlock: some worker always finishes and reports.
func (q *Queue) dispatch(jobs []*job, workers int) {
	work := make(chan *job)
	compl := make(chan *job, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		rng := q.workerRNG(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				q.runJob(j, rng)
				compl <- j
			}
		}()
	}
	running := make(map[Class]int)
	for _, j := range jobs {
		// Fold in whatever already finished (non-blocking) so the
		// permit counts reflect jobs actually in flight.
	reap:
		for {
			select {
			case d := <-compl:
				running[d.Class]--
			default:
				break reap
			}
		}
		if limit := q.permit(j.Class); limit > 0 {
			for running[j.Class] >= limit {
				d := <-compl
				running[d.Class]--
			}
		}
		running[j.Class]++
		work <- j
	}
	close(work)
	wg.Wait()
}

// permit returns the class's in-flight cap (0 = unlimited).
func (q *Queue) permit(c Class) int {
	if n, ok := q.cfg.Permits[c]; ok {
		return n
	}
	return q.cfg.DefaultPermit
}

// runJob executes one job under the retry policy, failing the injected
// initial attempts before calling Run. rng feeds the backoff jitter.
func (q *Queue) runJob(j *job, rng *rand.Rand) {
	j.err = q.cfg.Retry.Do(rng, func(attempt int) error {
		j.attempts = attempt
		if attempt <= j.failN {
			q.mu.Lock()
			q.stats.Injected++
			q.mu.Unlock()
			return ErrInjected
		}
		return j.Run()
	})
}

// workerRNG returns worker w's jitter stream, creating streams on
// demand (the streams are named, so the set of workers ever used does
// not perturb any one worker's draws).
func (q *Queue) workerRNG(w int) *rand.Rand {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.rngs) <= w {
		i := len(q.rngs)
		q.rngs = append(q.rngs, sim.RNG(q.cfg.Seed, q.cfg.Stream+"/worker/"+strconv.Itoa(i)))
	}
	return q.rngs[w]
}
