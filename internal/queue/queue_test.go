package queue

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coreda/internal/retry"
)

// TestDrainOrderPriorityFIFO pins the determinism contract: dispatch is
// stable priority order with FIFO tie-break, and Done callbacks fire in
// the same order on the drain caller.
func TestDrainOrderPriorityFIFO(t *testing.T) {
	t.Parallel()
	q := New(Config{Workers: 1})
	var ran, done []string
	for i, pri := range []int{1, 0, 1, 0, 2, 0} {
		i, pri := i, pri
		label := fmt.Sprintf("p%d-#%d", pri, i)
		q.Enqueue(Job{
			Priority: pri,
			Label:    label,
			Run:      func() error { ran = append(ran, label); return nil },
			Done:     func(error) { done = append(done, label) },
		})
	}
	if err := q.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	want := []string{"p0-#1", "p0-#3", "p0-#5", "p1-#0", "p1-#2", "p2-#4"}
	for i, w := range want {
		if ran[i] != w {
			t.Fatalf("run order %v, want %v", ran, want)
		}
		if done[i] != w {
			t.Fatalf("done order %v, want %v", done, want)
		}
	}
	st := q.Stats()
	if st.Enqueued != 6 || st.Completed != 6 || st.Failed != 0 || st.Drains != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDrainOrderStableAcrossWorkerCounts proves dispatch order (observed
// via Done) is identical at any worker count — the digest-parity
// property the fleet relies on.
func TestDrainOrderStableAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	var orders [][]string
	for _, workers := range []int{1, 4, 8} {
		q := New(Config{Workers: workers})
		var done []string
		for i := 0; i < 64; i++ {
			label := fmt.Sprintf("job-%02d", i)
			q.Enqueue(Job{
				Priority: i % 3,
				Label:    label,
				Run:      func() error { return nil },
				Done:     func(error) { done = append(done, label) },
			})
		}
		if err := q.Drain(); err != nil {
			t.Fatalf("workers=%d Drain: %v", workers, err)
		}
		orders = append(orders, done)
	}
	for i := 1; i < len(orders); i++ {
		for k := range orders[0] {
			if orders[i][k] != orders[0][k] {
				t.Fatalf("Done order diverges between worker counts: %v vs %v", orders[0], orders[i])
			}
		}
	}
}

// TestPermitExhaustion floods one class past its permit: the drain must
// complete (no deadlock) while the class's in-flight count never
// exceeds the permit, and other classes keep flowing.
func TestPermitExhaustion(t *testing.T) {
	t.Parallel()
	q := New(Config{
		Workers: 8,
		Permits: map[Class]int{"narrow": 2},
	})
	var inflight, peak atomic.Int32
	for i := 0; i < 24; i++ {
		class := Class("narrow")
		if i%3 == 0 {
			class = "wide"
		}
		cl := class
		q.Enqueue(Job{Class: cl, Run: func() error {
			if cl == "narrow" {
				n := inflight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inflight.Add(-1)
			}
			return nil
		}})
	}
	doneCh := make(chan error, 1)
	go func() { doneCh <- q.Drain() }()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain deadlocked under permit exhaustion")
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("narrow class ran %d-wide, permit is 2", p)
	}
	if st := q.Stats(); st.Completed != 24 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRetryInjection: injected faults consume attempts but never the
// last one, so every job still succeeds and only the retry counters
// move.
func TestRetryInjection(t *testing.T) {
	t.Parallel()
	q := New(Config{
		Workers: 4,
		Retry:   retry.Policy{Attempts: 3, Sleep: func(time.Duration) {}},
		// Ask for more failures than the budget allows: the cap at
		// attempts-1 must keep every job succeeding.
		Inject: func(Class, string) int { return 5 },
	})
	var ok atomic.Int32
	for i := 0; i < 10; i++ {
		q.Enqueue(Job{Run: func() error { ok.Add(1); return nil }})
	}
	if err := q.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st := q.Stats()
	if ok.Load() != 10 || st.Completed != 10 || st.Failed != 0 {
		t.Fatalf("injection changed outcomes: ran=%d stats=%+v", ok.Load(), st)
	}
	if st.Injected != 20 || st.Retried != 20 {
		t.Fatalf("want 2 injected attempts per job, got %+v", st)
	}
}

// TestRetryRealFailure: a job that always fails exhausts its attempts;
// Drain returns the first failure in dispatch order and Done receives
// each job's own error.
func TestRetryRealFailure(t *testing.T) {
	t.Parallel()
	errA := errors.New("a broke")
	errB := errors.New("b broke")
	q := New(Config{Workers: 2, Retry: retry.Policy{Attempts: 3, Sleep: func(time.Duration) {}}})
	var got []error
	// b enqueued first but a has the better priority: dispatch order is
	// a then b, so Drain must report errA.
	q.Enqueue(Job{Priority: 1, Label: "b", Run: func() error { return errB },
		Done: func(err error) { got = append(got, err) }})
	q.Enqueue(Job{Priority: 0, Label: "a", Run: func() error { return errA },
		Done: func(err error) { got = append(got, err) }})
	err := q.Drain()
	if !errors.Is(err, errA) {
		t.Fatalf("Drain error = %v, want first dispatch-order failure %v", err, errA)
	}
	if len(got) != 2 || !errors.Is(got[0], errA) || !errors.Is(got[1], errB) {
		t.Fatalf("Done errors = %v", got)
	}
	st := q.Stats()
	if st.Failed != 2 || st.Completed != 0 || st.Retried != 4 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDoneEnqueueLandsInNextDrain: a Done callback may enqueue; the new
// job waits for the next drain rather than extending the current one.
func TestDoneEnqueueLandsInNextDrain(t *testing.T) {
	t.Parallel()
	q := New(Config{})
	ran := 0
	q.Enqueue(Job{Run: func() error { ran++; return nil }, Done: func(error) {
		q.Enqueue(Job{Run: func() error { ran++; return nil }})
	}})
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 || q.Depth() != 1 {
		t.Fatalf("ran=%d depth=%d, want 1 and 1", ran, q.Depth())
	}
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 || q.Depth() != 0 {
		t.Fatalf("ran=%d depth=%d, want 2 and 0", ran, q.Depth())
	}
}

// TestDrainLatencyClock: latency accounting uses only the injected
// clock.
func TestDrainLatencyClock(t *testing.T) {
	t.Parallel()
	var now time.Duration
	q := New(Config{Clock: func() time.Duration {
		now += 5 * time.Millisecond
		return now
	}})
	q.Enqueue(Job{Run: func() error { return nil }})
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.DrainTime != 5*time.Millisecond || st.Drains != 1 {
		t.Fatalf("stats %+v", st)
	}
	// An empty drain is free and uncounted.
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Drains != 1 {
		t.Fatalf("empty drain counted: %+v", st)
	}
}

// TestDepthHighWater tracks queue depth and its high-water mark.
func TestDepthHighWater(t *testing.T) {
	t.Parallel()
	q := New(Config{})
	for i := 0; i < 7; i++ {
		q.Enqueue(Job{Run: func() error { return nil }})
	}
	if d := q.Depth(); d != 7 {
		t.Fatalf("Depth = %d", d)
	}
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Depth != 0 || st.MaxDepth != 7 {
		t.Fatalf("stats %+v", st)
	}
}

// TestConcurrentStatsDuringDrain exercises the counters' locking under
// the race detector: Stats/Depth snapshots race a live drain.
func TestConcurrentStatsDuringDrain(t *testing.T) {
	t.Parallel()
	q := New(Config{Workers: 4})
	for i := 0; i < 200; i++ {
		q.Enqueue(Job{Run: func() error { return nil }})
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = q.Stats()
				_ = q.Depth()
			}
		}
	}()
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if st := q.Stats(); st.Completed != 200 {
		t.Fatalf("stats %+v", st)
	}
}

// BenchmarkQueueThroughput measures enqueue+drain cost per trivial job
// at the fleet's worker count — the overhead the control plane pays to
// route a checkpoint write through the queue.
func BenchmarkQueueThroughput(b *testing.B) {
	q := New(Config{Workers: 8})
	const batch = 128
	job := Job{Class: "bench", Run: func() error { return nil }}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		for i := 0; i < batch; i++ {
			q.Enqueue(job)
		}
		if err := q.Drain(); err != nil {
			b.Fatal(err)
		}
	}
}
