// Package parrun is CoReDA's one sanctioned concurrency boundary for the
// deterministic simulation stack: a bounded worker pool that fans
// independent seeded trials across goroutines and collects the results by
// trial index.
//
// The experiments layer runs loops over trials that are embarrassingly
// parallel by construction — each trial owns its own sim.Scheduler and
// draws randomness from its own named sim.RNG stream, so no state is
// shared between trials and no trial's result depends on when it ran.
// Map exploits exactly that: fn(i) may run on any worker at any time, but
// results land in slot i, so aggregation order — and therefore every
// reported number — is bit-identical to a sequential run.
//
// Everything below parrun (core, sim, the root package, experiments
// itself) stays single-threaded; the schedonly analyzer enforces that
// goroutines are spawned nowhere else in the simulation stack.
package parrun

import (
	"fmt"
	"runtime"
	"sync"
)

// Map runs fn(0..n-1) across at most workers goroutines and returns the
// results ordered by index. workers <= 0 means runtime.GOMAXPROCS(0);
// workers == 1 runs inline with no goroutines at all (exactly the
// sequential loop it replaces).
//
// Error propagation is deterministic: if any call fails, Map stops
// handing out new indices, lets in-flight calls finish (the pool drains
// cleanly — no goroutine outlives the call), and returns the error of the
// lowest failing index. Because indices are claimed in ascending order,
// that is the same error a sequential loop would have stopped on.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("parrun: nil fn")
	}
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, fmt.Errorf("parrun: trial %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		mu       sync.Mutex
		next     int  // next unclaimed index
		failed   bool // stop claiming once any trial errors
		firstIdx int  // lowest failing index seen so far
		firstErr error
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if !failed || i < firstIdx {
			failed, firstIdx, firstErr = true, i, err
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				v, err := fn(i)
				if err != nil {
					fail(i, err)
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, fmt.Errorf("parrun: trial %d: %w", firstIdx, firstErr)
	}
	return out, nil
}
