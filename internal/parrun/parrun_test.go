package parrun

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapCollectsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		got, err := Map(25, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 25 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []string {
		out, err := Map(40, workers, func(i int) (string, error) {
			return fmt.Sprintf("trial-%02d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmptyAndNil(t *testing.T) {
	if out, err := Map(0, 4, func(int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Errorf("n=0: (%v, %v)", out, err)
	}
	if out, err := Map(-3, 4, func(int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Errorf("n<0: (%v, %v)", out, err)
	}
	if _, err := Map[int](3, 4, nil); err == nil {
		t.Error("nil fn accepted")
	}
}

// TestMapFirstErrorWins: the reported error must be the lowest failing
// index — the same error a sequential loop stops on — regardless of
// worker count or completion order.
func TestMapFirstErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 2, 4, 16} {
		_, err := Map(50, workers, func(i int) (int, error) {
			if i == 7 || i == 23 || i == 41 {
				return 0, fmt.Errorf("index %d: %w", i, sentinel)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: error chain lost: %v", workers, err)
		}
		if !strings.Contains(err.Error(), "trial 7") {
			t.Errorf("workers=%d: error = %q, want lowest failing trial 7", workers, err)
		}
	}
}

// TestMapDrainsCleanly: after an error, Map must stop claiming new
// indices but wait for in-flight calls — no goroutine may still be
// running fn when Map returns.
func TestMapDrainsCleanly(t *testing.T) {
	var inflight, started atomic.Int32
	// Non-failing trials block until the failing trial has run, so they
	// are genuinely in flight when the error lands.
	released := make(chan struct{})
	_, err := Map(100, 4, func(i int) (int, error) {
		inflight.Add(1)
		defer inflight.Add(-1)
		started.Add(1)
		if i == 0 {
			close(released)
			return 0, errors.New("early failure")
		}
		<-released
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := inflight.Load(); got != 0 {
		t.Errorf("%d calls still in flight after Map returned", got)
	}
	if s := started.Load(); s == 100 {
		t.Error("pool kept claiming every index after the failure")
	}
}

// TestMapStopsClaimingAfterError: with a serial pool (workers=1 via the
// inline path is trivially true, so use 2), indices far past the failure
// must never start once the failure is recorded.
func TestMapStopsClaimingAfterError(t *testing.T) {
	var maxStarted atomic.Int32
	_, err := Map(1000, 2, func(i int) (int, error) {
		for {
			cur := maxStarted.Load()
			if int32(i) <= cur || maxStarted.CompareAndSwap(cur, int32(i)) {
				break
			}
		}
		if i < 4 {
			return 0, errors.New("fail fast")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if m := maxStarted.Load(); m >= 100 {
		t.Errorf("claimed up to index %d after an immediate failure", m)
	}
}
