// Package reminding implements CoReDA's reminding subsystem: it renders
// the planning subsystem's prompts into the paper's three channels — text
// message, tool picture and LED blinking — and praises completed steps.
//
// Two trigger situations (section 2.3):
//  1. the user does not use the tool s/he should use for a certain moment
//     (idle timeout);
//  2. the user incorrectly uses another tool.
//
// In both cases the picture and text of the correct tool are shown and its
// green LED blinks; in the wrong-tool case the red LED on the offending
// tool blinks too. Minimal reminders give a short message and fewer
// blinks; specific reminders give a long personalized message and more
// blinks.
package reminding

import (
	"fmt"
	"time"

	"coreda/internal/adl"
	"coreda/internal/core"
	"coreda/internal/wire"
)

// Trigger says why a reminder fired.
type Trigger int

// Trigger situations from the paper.
const (
	// TriggerIdle fires when the user has done nothing for the
	// statistically-derived timeout.
	TriggerIdle Trigger = iota + 1
	// TriggerWrongTool fires when the user uses a tool out of order.
	TriggerWrongTool
)

// String returns the trigger name.
func (t Trigger) String() string {
	switch t {
	case TriggerIdle:
		return "idle"
	case TriggerWrongTool:
		return "wrong-tool"
	default:
		return fmt.Sprintf("Trigger(%d)", int(t))
	}
}

// Reminder is one fully rendered reminder.
type Reminder struct {
	// At is when the reminder was delivered.
	At time.Duration
	// Tool is the tool the user should use next.
	Tool adl.ToolID
	// Level is the reminding level actually used (after escalation).
	Level core.Level
	// Trigger says what fired the reminder.
	Trigger Trigger
	// WrongTool is the offending tool for TriggerWrongTool (NoTool
	// otherwise); its red LED blinks.
	WrongTool adl.ToolID
	// Text is the message shown on the display.
	Text string
	// Picture is the asset reference of the tool picture shown.
	Picture string
	// GreenBlinks is how many times the correct tool's green LED blinks.
	GreenBlinks int
	// RedBlinks is how many times the wrong tool's red LED blinks.
	RedBlinks int
	// Escalated reports whether the level was raised above the planner's
	// choice because earlier reminders went unanswered.
	Escalated bool
}

// Praise is the encouragement shown when the user progresses (Figure 1:
// "Excellent!").
type Praise struct {
	At   time.Duration
	Text string
}

// Alert is a caregiver-facing maintenance notification — a sensor node
// died, a battery must be changed — delivered through the reminding
// subsystem's display channel but addressed to the caregiver, not the
// user. Dementia-assistive systems must run unattended for long periods;
// surfacing degradation is part of reminding sensibly.
type Alert struct {
	// At is when the alert was raised.
	At time.Duration
	// Tool is the affected tool (NoTool for system-wide alerts).
	Tool adl.ToolID
	// Text is the human-readable message.
	Text string
	// Recovered marks the symmetric all-clear for an earlier alert.
	Recovered bool
}

// AlertSink receives caregiver alerts (a pager, a log, a test recorder).
type AlertSink interface {
	ShowAlert(Alert)
}

// Display receives rendered display output (text + picture). The real
// system drives a screen in front of the user; tests and simulations
// record the calls.
type Display interface {
	ShowReminder(Reminder)
	ShowPraise(Praise)
}

// LEDs drives tool LEDs; the sensornet gateway implements the actual
// radio path.
type LEDs interface {
	Blink(tool adl.ToolID, color wire.LEDColor, blinks int, period time.Duration)
}

// Config parameterizes the subsystem.
type Config struct {
	// Activity supplies tool names and pictures.
	Activity *adl.Activity
	// UserName personalizes specific messages ("Mr. Kim"). Empty means
	// "Dear user".
	UserName string
	// MinimalBlinks is the green-LED blink count for minimal reminders
	// (zero means 3).
	MinimalBlinks int
	// SpecificBlinks is the blink count for specific reminders (zero
	// means 8).
	SpecificBlinks int
	// BlinkPeriod is the LED blink period (zero means 500 ms).
	BlinkPeriod time.Duration
	// EscalateAfter is how many unanswered reminders for the same tool
	// force the level to Specific (zero means 2; negative disables
	// escalation).
	EscalateAfter int
}

func (c *Config) fill() error {
	if c.Activity == nil {
		return fmt.Errorf("reminding: Config.Activity is required")
	}
	if c.UserName == "" {
		c.UserName = "Dear user"
	}
	if c.MinimalBlinks == 0 {
		c.MinimalBlinks = 3
	}
	if c.SpecificBlinks == 0 {
		c.SpecificBlinks = 8
	}
	if c.BlinkPeriod == 0 {
		c.BlinkPeriod = 500 * time.Millisecond
	}
	if c.EscalateAfter == 0 {
		c.EscalateAfter = 2
	}
	return nil
}

// Stats counts subsystem activity.
type Stats struct {
	Reminders    int
	MinimalSent  int
	SpecificSent int
	Escalations  int
	Praises      int
	// Alerts counts caregiver alerts raised (recoveries included).
	Alerts int
}

// Subsystem renders and delivers reminders.
type Subsystem struct {
	cfg     Config
	display Display
	leds    LEDs
	alerts  AlertSink

	// unanswered counts consecutive reminders for the same tool with no
	// progress in between; it drives escalation.
	unanswered     int
	unansweredTool adl.ToolID

	// Stats accumulates counters.
	Stats Stats
}

// New creates the subsystem. display and leds may be nil (that channel is
// then skipped — e.g. a deployment without tool LEDs).
func New(cfg Config, display Display, leds LEDs) (*Subsystem, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Subsystem{cfg: cfg, display: display, leds: leds}, nil
}

// Remind renders prompt and delivers it through every configured channel.
// wrongTool must be the offending tool for TriggerWrongTool and NoTool
// otherwise.
func (s *Subsystem) Remind(at time.Duration, prompt core.Prompt, trigger Trigger, wrongTool adl.ToolID) (Reminder, error) {
	tool, ok := s.cfg.Activity.Tool(prompt.Tool)
	if !ok {
		return Reminder{}, fmt.Errorf("reminding: tool %d not in activity %q", prompt.Tool, s.cfg.Activity.Name)
	}

	level := prompt.Level
	escalated := false
	if s.cfg.EscalateAfter > 0 {
		if s.unansweredTool == prompt.Tool && s.unanswered >= s.cfg.EscalateAfter && level == core.Minimal {
			level = core.Specific
			escalated = true
		}
		if s.unansweredTool == prompt.Tool {
			s.unanswered++
		} else {
			s.unansweredTool = prompt.Tool
			s.unanswered = 1
		}
	}

	blinks := s.cfg.MinimalBlinks
	if level == core.Specific {
		blinks = s.cfg.SpecificBlinks
	}
	r := Reminder{
		At:          at,
		Tool:        prompt.Tool,
		Level:       level,
		Trigger:     trigger,
		WrongTool:   wrongTool,
		Text:        s.message(tool, level),
		Picture:     tool.Picture,
		GreenBlinks: blinks,
		Escalated:   escalated,
	}
	if trigger == TriggerWrongTool && wrongTool != adl.NoTool {
		r.RedBlinks = blinks
	}

	if s.display != nil {
		s.display.ShowReminder(r)
	}
	if s.leds != nil {
		s.leds.Blink(r.Tool, wire.LEDGreen, r.GreenBlinks, s.cfg.BlinkPeriod)
		if r.RedBlinks > 0 {
			s.leds.Blink(r.WrongTool, wire.LEDRed, r.RedBlinks, s.cfg.BlinkPeriod)
		}
	}

	s.Stats.Reminders++
	if level == core.Specific {
		s.Stats.SpecificSent++
	} else {
		s.Stats.MinimalSent++
	}
	if escalated {
		s.Stats.Escalations++
	}
	return r, nil
}

// SetAlertSink installs (or, with nil, removes) the caregiver alert
// channel. Kept out of New so existing call sites stay unchanged.
func (s *Subsystem) SetAlertSink(sink AlertSink) { s.alerts = sink }

// Alert raises a caregiver alert through the configured sink.
func (s *Subsystem) Alert(a Alert) {
	s.Stats.Alerts++
	if s.alerts != nil {
		s.alerts.ShowAlert(a)
	}
}

// NoteProgress must be called when the user performs a step; it resets
// the escalation counter and delivers praise (Figure 1: correct progress
// earns "Excellent!").
func (s *Subsystem) NoteProgress(at time.Duration, praise bool) {
	s.unanswered = 0
	s.unansweredTool = adl.NoTool
	if praise {
		p := Praise{At: at, Text: "Excellent!"}
		if s.display != nil {
			s.display.ShowPraise(p)
		}
		s.Stats.Praises++
	}
}

// message renders the text channel for the given level.
func (s *Subsystem) message(tool adl.Tool, level core.Level) string {
	if level == core.Specific {
		return fmt.Sprintf("%s, please use the %s in front of you.", s.cfg.UserName, tool.Name)
	}
	return fmt.Sprintf("Please use %s.", tool.Name)
}
