package reminding

import (
	"strings"
	"testing"
	"time"

	"coreda/internal/adl"
	"coreda/internal/core"
	"coreda/internal/wire"
)

type fakeDisplay struct {
	reminders []Reminder
	praises   []Praise
}

func (d *fakeDisplay) ShowReminder(r Reminder) { d.reminders = append(d.reminders, r) }
func (d *fakeDisplay) ShowPraise(p Praise)     { d.praises = append(d.praises, p) }

type ledCall struct {
	tool   adl.ToolID
	color  wire.LEDColor
	blinks int
	period time.Duration
}

type fakeLEDs struct{ calls []ledCall }

func (l *fakeLEDs) Blink(tool adl.ToolID, color wire.LEDColor, blinks int, period time.Duration) {
	l.calls = append(l.calls, ledCall{tool, color, blinks, period})
}

func newSub(t *testing.T, cfg Config) (*Subsystem, *fakeDisplay, *fakeLEDs) {
	t.Helper()
	if cfg.Activity == nil {
		cfg.Activity = adl.TeaMaking()
	}
	d := &fakeDisplay{}
	l := &fakeLEDs{}
	s, err := New(cfg, d, l)
	if err != nil {
		t.Fatal(err)
	}
	return s, d, l
}

func TestConfigRequiresActivity(t *testing.T) {
	if _, err := New(Config{}, nil, nil); err == nil {
		t.Error("nil activity accepted")
	}
}

func TestMinimalReminderRendersAllChannels(t *testing.T) {
	s, d, l := newSub(t, Config{})
	r, err := s.Remind(13*time.Second, core.Prompt{Tool: adl.ToolPot, Level: core.Minimal}, TriggerWrongTool, adl.ToolTeaCup)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1, time 13 s: text, red LED on teacup, green LED on pot,
	// picture of pot.
	if r.Text != "Please use electronic pot." {
		t.Errorf("text = %q", r.Text)
	}
	if r.Picture != "pot.png" {
		t.Errorf("picture = %q", r.Picture)
	}
	if r.GreenBlinks != 3 || r.RedBlinks != 3 {
		t.Errorf("blinks = %d/%d", r.GreenBlinks, r.RedBlinks)
	}
	if len(d.reminders) != 1 {
		t.Fatalf("display calls = %d", len(d.reminders))
	}
	if len(l.calls) != 2 {
		t.Fatalf("led calls = %d", len(l.calls))
	}
	if l.calls[0].tool != adl.ToolPot || l.calls[0].color != wire.LEDGreen {
		t.Errorf("green call = %+v", l.calls[0])
	}
	if l.calls[1].tool != adl.ToolTeaCup || l.calls[1].color != wire.LEDRed {
		t.Errorf("red call = %+v", l.calls[1])
	}
}

func TestIdleTriggerHasNoRedLED(t *testing.T) {
	s, _, l := newSub(t, Config{})
	r, err := s.Remind(71*time.Second, core.Prompt{Tool: adl.ToolTeaCup, Level: core.Minimal}, TriggerIdle, adl.NoTool)
	if err != nil {
		t.Fatal(err)
	}
	if r.RedBlinks != 0 {
		t.Errorf("RedBlinks = %d", r.RedBlinks)
	}
	if len(l.calls) != 1 || l.calls[0].color != wire.LEDGreen {
		t.Errorf("led calls = %+v", l.calls)
	}
}

func TestSpecificReminderIsPersonalizedAndBlinksMore(t *testing.T) {
	s, _, _ := newSub(t, Config{UserName: "Mr. Kim"})
	r, err := s.Remind(0, core.Prompt{Tool: adl.ToolTeaBox, Level: core.Specific}, TriggerIdle, adl.NoTool)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(r.Text, "Mr. Kim,") || !strings.Contains(r.Text, "tea-box") {
		t.Errorf("text = %q", r.Text)
	}
	if r.GreenBlinks != 8 {
		t.Errorf("GreenBlinks = %d, want more than minimal", r.GreenBlinks)
	}
	if s.Stats.SpecificSent != 1 || s.Stats.MinimalSent != 0 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

func TestUnknownToolRejected(t *testing.T) {
	s, _, _ := newSub(t, Config{})
	if _, err := s.Remind(0, core.Prompt{Tool: adl.ToolBrush}, TriggerIdle, adl.NoTool); err == nil {
		t.Error("foreign tool accepted")
	}
}

func TestEscalationAfterUnansweredReminders(t *testing.T) {
	s, _, _ := newSub(t, Config{EscalateAfter: 2})
	p := core.Prompt{Tool: adl.ToolPot, Level: core.Minimal}
	r1, _ := s.Remind(0, p, TriggerIdle, adl.NoTool)
	r2, _ := s.Remind(30*time.Second, p, TriggerIdle, adl.NoTool)
	if r1.Escalated || r2.Escalated {
		t.Error("escalated too early")
	}
	r3, _ := s.Remind(60*time.Second, p, TriggerIdle, adl.NoTool)
	if !r3.Escalated || r3.Level != core.Specific {
		t.Errorf("third reminder = %+v, want escalated specific", r3)
	}
	if s.Stats.Escalations != 1 {
		t.Errorf("Escalations = %d", s.Stats.Escalations)
	}
}

func TestProgressResetsEscalation(t *testing.T) {
	s, _, _ := newSub(t, Config{EscalateAfter: 2})
	p := core.Prompt{Tool: adl.ToolPot, Level: core.Minimal}
	s.Remind(0, p, TriggerIdle, adl.NoTool)
	s.Remind(1, p, TriggerIdle, adl.NoTool)
	s.NoteProgress(2, false)
	r, _ := s.Remind(3, p, TriggerIdle, adl.NoTool)
	if r.Escalated {
		t.Error("escalated despite progress reset")
	}
}

func TestEscalationTracksToolChange(t *testing.T) {
	s, _, _ := newSub(t, Config{EscalateAfter: 1})
	s.Remind(0, core.Prompt{Tool: adl.ToolPot, Level: core.Minimal}, TriggerIdle, adl.NoTool)
	// Different tool: counter restarts.
	r, _ := s.Remind(1, core.Prompt{Tool: adl.ToolKettle, Level: core.Minimal}, TriggerIdle, adl.NoTool)
	if r.Escalated {
		t.Error("escalated across different tools")
	}
	r2, _ := s.Remind(2, core.Prompt{Tool: adl.ToolKettle, Level: core.Minimal}, TriggerIdle, adl.NoTool)
	if !r2.Escalated {
		t.Error("second reminder for same tool should escalate (EscalateAfter=1)")
	}
}

func TestEscalationDisabled(t *testing.T) {
	s, _, _ := newSub(t, Config{EscalateAfter: -1})
	p := core.Prompt{Tool: adl.ToolPot, Level: core.Minimal}
	for i := 0; i < 5; i++ {
		r, _ := s.Remind(time.Duration(i), p, TriggerIdle, adl.NoTool)
		if r.Escalated || r.Level != core.Minimal {
			t.Fatalf("reminder %d escalated despite EscalateAfter=-1", i)
		}
	}
}

func TestPraise(t *testing.T) {
	s, d, _ := newSub(t, Config{})
	s.NoteProgress(23*time.Second, true)
	if len(d.praises) != 1 {
		t.Fatalf("praises = %d", len(d.praises))
	}
	if d.praises[0].Text != "Excellent!" {
		t.Errorf("praise text = %q", d.praises[0].Text)
	}
	if s.Stats.Praises != 1 {
		t.Errorf("Praises = %d", s.Stats.Praises)
	}
	s.NoteProgress(24*time.Second, false)
	if len(d.praises) != 1 {
		t.Error("praise delivered when praise=false")
	}
}

func TestNilSinksAreSkipped(t *testing.T) {
	s, err := New(Config{Activity: adl.TeaMaking()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Remind(0, core.Prompt{Tool: adl.ToolPot}, TriggerIdle, adl.NoTool); err != nil {
		t.Errorf("Remind with nil sinks: %v", err)
	}
	s.NoteProgress(0, true)
	if s.Stats.Reminders != 1 || s.Stats.Praises != 1 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

func TestTriggerString(t *testing.T) {
	if TriggerIdle.String() != "idle" || TriggerWrongTool.String() != "wrong-tool" {
		t.Error("trigger strings")
	}
	if Trigger(9).String() == "" {
		t.Error("unknown trigger")
	}
}
