package fleet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"coreda"
	"coreda/internal/reminding"
	"coreda/internal/sensornet"
	"coreda/internal/wire"
)

// ServeConfig configures a fleet TCP front end.
type ServeConfig struct {
	// Speed is how many virtual seconds elapse per wall-clock second
	// (zero means 1). One virtual clock paces every tenant.
	Speed float64
	// Tick is the clock-pump granularity in wall time (zero means 50 ms).
	Tick time.Duration
	// CheckpointEvery batch-flushes every dirty tenant at this wall
	// interval (zero means 30 s; negative disables periodic flushing —
	// eviction and Stop still checkpoint).
	CheckpointEvery time.Duration
	// DefaultHousehold receives traffic from connections that never sent
	// a hello — version-0 nodes predating the household handshake. Empty
	// means such traffic is dropped (logged once per connection).
	DefaultHousehold string
	// Route, when non-nil, decides household placement in a cluster: it
	// returns the owning peer's node-facing address and whether that is
	// this process. A hello for a household owned elsewhere is answered
	// with a wire.Redirect naming addr instead of being registered. Nil
	// means every household is local (single-process fleet).
	Route func(household string) (addr string, local bool)
	// AfterFlush, when non-nil, runs after each periodic batch
	// checkpoint flush in Run — the cluster layer's hook to fan the
	// freshly written checkpoints out to replica peers.
	AfterFlush func()
	// ReadTimeout, when positive, bounds each frame read so a node that
	// vanishes without a FIN cannot leak its reader goroutine.
	ReadTimeout time.Duration
	// WriteTimeout, when positive, bounds each frame write (acks, LED
	// commands).
	WriteTimeout time.Duration
	// OnLog receives human-readable event lines (may be nil).
	OnLog func(string)
}

// Server exposes a Fleet over TCP: nodes speak the wire protocol, open
// with a hello frame naming their household, and all subsequent traffic
// routes to that household's tenant on its owning shard. Nodes that
// never say hello fall back to DefaultHousehold, so pre-hello nodes keep
// working against a fleet of one.
//
// The serving layer is the fleet's wall-clock boundary: connection
// goroutines deliver into shard queues, and a pump goroutine advances
// the shared virtual clock — everything inside the shards stays
// deterministic virtual time.
type Server struct {
	f   *Fleet
	cfg ServeConfig

	start   time.Time
	done    chan struct{}
	stopped sync.Once

	mu    sync.Mutex
	conns map[string]map[uint16]*fleetConn // household → uid → latest conn
	all   map[*fleetConn]struct{}
	seq   uint16
}

// fleetConn is one node connection and the household it greeted as.
type fleetConn struct {
	c       net.Conn
	timeout time.Duration
	wm      sync.Mutex // serializes frame writes (acks vs LED commands)
	w       *wire.Writer
	// ackPkt is reusable ack scratch, owned by the connection's reader
	// goroutine (the only sender of acks).
	ackPkt wire.Ack

	mu        sync.Mutex
	household string
	warned    bool // "no hello, no default" logged once
}

func (nc *fleetConn) write(p wire.Packet) error {
	nc.wm.Lock()
	defer nc.wm.Unlock()
	if err := nc.w.QueuePacket(p); err != nil {
		return err
	}
	if nc.timeout > 0 {
		nc.c.SetWriteDeadline(time.Now().Add(nc.timeout)) //coreda:vet-ignore nondeterminism serving-layer socket deadline is wall-clock by nature
	}
	//coreda:vet-ignore lockheld wm exists to serialize whole frames onto the socket; holding it across the flush is the point
	return nc.w.Flush()
}

// release recycles the writer's pooled frame buffer once the connection
// is done.
func (nc *fleetConn) release() {
	nc.wm.Lock()
	nc.w.Release()
	nc.wm.Unlock()
}

// NewServer wraps a fleet that has not been started yet: it installs the
// LED write-back hook into the fleet's tenant configs, then starts the
// fleet. Call Run for the clock pump and Serve to accept nodes.
func NewServer(f *Fleet, cfg ServeConfig) (*Server, error) {
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 50 * time.Millisecond
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 30 * time.Second
	}
	if cfg.DefaultHousehold != "" && !ValidHousehold(cfg.DefaultHousehold) {
		return nil, fmt.Errorf("fleet: invalid default household %q", cfg.DefaultHousehold)
	}
	srv := &Server{
		f:     f,
		cfg:   cfg,
		start: time.Now(), //coreda:vet-ignore nondeterminism the serving pump is the sanctioned wall-to-virtual boundary
		done:  make(chan struct{}),
		conns: make(map[string]map[uint16]*fleetConn),
		all:   make(map[*fleetConn]struct{}),
	}
	if f.state.Load() != fleetBuilt {
		return nil, fmt.Errorf("fleet: NewServer requires a fleet that has not been started")
	}
	if f.cfg.LEDs == nil {
		f.cfg.LEDs = func(household string) reminding.LEDs {
			return serveLEDs{srv: srv, household: household}
		}
	}
	f.Start()
	return srv, nil
}

// virtualNow is the shared virtual clock every tenant is paced by.
func (srv *Server) virtualNow() time.Duration {
	return time.Duration(float64(time.Since(srv.start)) * srv.cfg.Speed) //coreda:vet-ignore nondeterminism the serving pump is the sanctioned wall-to-virtual boundary
}

// Run pumps the tenants' virtual clocks from the wall clock and drives
// periodic batch checkpointing until Stop. Run it in one goroutine.
func (srv *Server) Run() {
	ticker := time.NewTicker(srv.cfg.Tick) //coreda:vet-ignore nondeterminism the serving pump is the sanctioned wall-to-virtual boundary
	defer ticker.Stop()
	var sinceFlush time.Duration
	for {
		select {
		case <-srv.done:
			return
		case <-ticker.C:
			srv.f.advanceAll(srv.virtualNow())
			if srv.cfg.CheckpointEvery > 0 {
				sinceFlush += srv.cfg.Tick
				if sinceFlush >= srv.cfg.CheckpointEvery {
					sinceFlush = 0
					srv.f.Flush()
					if srv.cfg.AfterFlush != nil {
						srv.cfg.AfterFlush()
					}
				}
			}
		}
	}
}

// Stop halts the pump and closes every node connection. The fleet itself
// is left to the caller (typically f.Stop right after, which takes the
// final checkpoint).
func (srv *Server) Stop() {
	srv.stopped.Do(func() {
		close(srv.done)
		srv.mu.Lock()
		defer srv.mu.Unlock()
		for nc := range srv.all {
			nc.c.Close()
		}
	})
}

// Serve accepts node connections until the listener fails or Stop.
func (srv *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-srv.done:
				return nil
			default:
				return err
			}
		}
		go srv.HandleConn(conn)
	}
}

// HandleConn reads frames from one node connection until EOF, a fatal
// decode error, or — with ReadTimeout set — prolonged silence. Unlike the
// single-household rtbridge there is no central packet loop: the fleet's
// shard queues are the serialization point, so each connection goroutine
// delivers directly.
func (srv *Server) HandleConn(conn net.Conn) {
	nc := &fleetConn{c: conn, timeout: srv.cfg.WriteTimeout, w: wire.NewWriter(conn)}
	srv.mu.Lock()
	srv.all[nc] = struct{}{}
	srv.mu.Unlock()
	defer func() {
		srv.mu.Lock()
		delete(srv.all, nc)
		srv.mu.Unlock()
		nc.release()
	}()
	r := wire.NewReader(conn)
	var f wire.Frame // reused across reads: no per-packet alloc
	for {
		if srv.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(srv.cfg.ReadTimeout)) //coreda:vet-ignore nondeterminism serving-layer socket deadline is wall-clock by nature
		}
		if err := r.ReadFrame(&f); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				srv.log("conn %s: %v", conn.RemoteAddr(), err)
			}
			conn.Close()
			return
		}
		srv.handlePacket(nc, &f)
	}
}

// household resolves the tenant a connection's traffic belongs to.
func (nc *fleetConn) forHousehold(fallback string) (string, bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.household != "" {
		return nc.household, true
	}
	if fallback != "" {
		return fallback, true
	}
	warned := nc.warned
	nc.warned = true
	return "", !warned // false once already warned; caller logs on true
}

func (srv *Server) handlePacket(nc *fleetConn, f *wire.Frame) {
	now := srv.virtualNow()
	switch f.Kind {
	case wire.TypeHello:
		pkt := &f.Hello
		if !ValidHousehold(pkt.Household) {
			srv.log("conn %s: hello with invalid household %q", nc.c.RemoteAddr(), pkt.Household)
			return
		}
		if srv.cfg.Route != nil {
			if addr, local := srv.cfg.Route(pkt.Household); !local {
				// Not ours: point the node at the owning peer. The
				// connection's household stays unset, so any traffic the
				// node sends before reconnecting is dropped, not
				// misdelivered into a tenant this process must not own.
				if err := nc.write(&wire.Redirect{Seq: pkt.Seq, Addr: addr}); err != nil {
					srv.log("redirect %s to %s: %v", pkt.Household, addr, err)
				}
				srv.log("%7.1fs node %d household %s redirected to %s", now.Seconds(), pkt.UID, pkt.Household, addr)
				return
			}
		}
		nc.mu.Lock()
		nc.household = pkt.Household
		nc.mu.Unlock()
		srv.register(pkt.Household, pkt.UID, nc)
		srv.ack(nc, pkt.UID, pkt.Seq)
		srv.log("%7.1fs node %d joined household %s (hello v%d)", now.Seconds(), pkt.UID, pkt.Household, pkt.HelloVersion)
	case wire.TypeUsageStart:
		pkt := &f.UsageStart
		hh, ok := srv.resolve(nc, pkt.UID)
		if !ok {
			return
		}
		srv.ack(nc, pkt.UID, pkt.Seq)
		srv.deliver(hh, Event{
			Household: hh,
			At:        now,
			Kind:      EventUsage,
			Usage: coreda.UsageEvent{
				Tool: coreda.ToolID(pkt.UID),
				Kind: sensornet.UsageStarted,
				At:   now,
				Hits: int(pkt.Hits),
			},
		})
	case wire.TypeUsageEnd:
		pkt := &f.UsageEnd
		hh, ok := srv.resolve(nc, pkt.UID)
		if !ok {
			return
		}
		srv.ack(nc, pkt.UID, pkt.Seq)
		srv.deliver(hh, Event{
			Household: hh,
			At:        now,
			Kind:      EventUsage,
			Usage: coreda.UsageEvent{
				Tool:     coreda.ToolID(pkt.UID),
				Kind:     sensornet.UsageEnded,
				At:       now,
				Duration: time.Duration(pkt.DurationMs) * time.Millisecond,
			},
		})
	case wire.TypeHeartbeat:
		// Liveness only; register so LED write-back finds the node even
		// before its first usage report.
		srv.resolve(nc, f.Heartbeat.UID)
	case wire.TypeAck:
		// LED command acknowledged; TCP already guarantees delivery.
	}
}

// resolve maps a connection's packet to its household and registers the
// node for LED write-back. It returns false (logging the first time) for
// traffic with neither a hello nor a default household.
func (srv *Server) resolve(nc *fleetConn, uid uint16) (string, bool) {
	hh, ok := nc.forHousehold(srv.cfg.DefaultHousehold)
	if hh == "" {
		if ok {
			srv.log("conn %s: traffic before hello and no default household — dropping", nc.c.RemoteAddr())
		}
		return "", false
	}
	srv.register(hh, uid, nc)
	return hh, true
}

func (srv *Server) deliver(hh string, ev Event) {
	if err := srv.f.Deliver(ev); err != nil {
		srv.log("household %s: %v", hh, err)
	}
}

func (srv *Server) register(household string, uid uint16, nc *fleetConn) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	m := srv.conns[household]
	if m == nil {
		m = make(map[uint16]*fleetConn)
		srv.conns[household] = m
	}
	m[uid] = nc
}

func (srv *Server) ack(nc *fleetConn, uid, seq uint16) {
	// ackPkt is owned by the reader goroutine calling this, and write
	// copies the encoded bytes out before returning, so reuse is safe.
	nc.ackPkt = wire.Ack{UID: uid, Seq: seq}
	if err := nc.write(&nc.ackPkt); err != nil {
		srv.log("ack to %d: %v", uid, err)
	}
}

func (srv *Server) log(format string, args ...any) {
	if srv.cfg.OnLog == nil {
		return
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	srv.cfg.OnLog(fmt.Sprintf(format, args...))
}

// serveLEDs routes one household's reminder LED commands back to its
// node connections.
type serveLEDs struct {
	srv       *Server
	household string
}

// Blink implements reminding.LEDs.
func (l serveLEDs) Blink(tool coreda.ToolID, color wire.LEDColor, blinks int, period time.Duration) {
	srv := l.srv
	srv.mu.Lock()
	nc := srv.conns[l.household][uint16(tool)]
	srv.seq++
	seq := srv.seq
	srv.mu.Unlock()
	if nc == nil {
		srv.log("LED %s x%d for tool %d: no node connected in household %s", color, blinks, tool, l.household)
		return
	}
	if blinks < 0 {
		blinks = 0
	}
	if blinks > 255 {
		blinks = 255
	}
	cmd := &wire.LEDCommand{
		UID:      uint16(tool),
		Seq:      seq,
		Color:    color,
		Blinks:   uint8(blinks),
		PeriodMs: uint16(period / time.Millisecond),
	}
	if err := nc.write(cmd); err != nil {
		srv.log("LED to %d in %s: %v", tool, l.household, err)
	}
}

var _ reminding.LEDs = serveLEDs{}
