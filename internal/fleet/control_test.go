package fleet

// Tests for the queue-backed control plane: digest parity against the
// inline baseline, deterministic chaos job-failure injection, writeback
// failure surfacing on the bus, and shard-loop immunity to slow bus
// subscribers.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"coreda/internal/notify"
	"coreda/internal/store"
)

// TestSoakControlParity is the in-package half of the check.sh
// queue-parity gate: the same soak must produce byte-identical policy
// digests (and identical counters) whether control writes run inline on
// the drain loop or as control-queue jobs.
func TestSoakControlParity(t *testing.T) {
	t.Parallel()
	run := func(mode ControlMode) SoakResult {
		res, err := Soak(SoakConfig{
			Seed:       11,
			Households: 48,
			Sessions:   4,
			Shards:     4,
			Dir:        t.TempDir(),
			Control:    mode,
		})
		if err != nil {
			t.Fatalf("soak (control=%d): %v", mode, err)
		}
		return res
	}
	inline, queued := run(ControlInline), run(ControlQueue)
	if inline.Digest != queued.Digest {
		t.Errorf("digest diverged: inline %s, queue %s", inline.Digest, queued.Digest)
	}
	if inline.Stats != queued.Stats {
		t.Errorf("stats diverged:\n inline %+v\n queue  %+v", inline.Stats, queued.Stats)
	}
	if queued.Stats.Evictions == 0 || queued.Stats.Checkpoints == 0 {
		t.Fatalf("soak under-exercised the control plane: %+v", queued.Stats)
	}
}

// TestSoakJobFailDigestStable: chaos job-failure injection exercises the
// retry path (JobRetries > 0) without perturbing a single policy byte.
func TestSoakJobFailDigestStable(t *testing.T) {
	t.Parallel()
	run := func(jobFail float64) SoakResult {
		res, err := Soak(SoakConfig{
			Seed:       11,
			Households: 48,
			Sessions:   4,
			Shards:     4,
			Dir:        t.TempDir(),
			JobFail:    jobFail,
		})
		if err != nil {
			t.Fatalf("soak (jobfail=%v): %v", jobFail, err)
		}
		return res
	}
	clean, faulty := run(0), run(0.5)
	if clean.Digest != faulty.Digest {
		t.Errorf("injection changed the digest: %s vs %s", clean.Digest, faulty.Digest)
	}
	if clean.Stats.JobRetries != 0 {
		t.Errorf("clean run retried %d jobs", clean.Stats.JobRetries)
	}
	if faulty.Stats.JobRetries == 0 {
		t.Error("JobFail=0.5 never exercised a retry")
	}
	// Outcomes must match exactly: injection may only move retry
	// counters.
	faultyStats := faulty.Stats
	faultyStats.JobRetries = clean.Stats.JobRetries
	if clean.Stats != faultyStats {
		t.Errorf("injection changed outcomes:\n clean  %+v\n faulty %+v", clean.Stats, faulty.Stats)
	}
}

// failingBackend fails PutStream for selected households — simulating a
// persistent write failure on an eviction writeback.
type failingBackend struct {
	store.Backend
	fail func(name string) bool
}

var errDiskGone = errors.New("injected: disk gone")

func (b *failingBackend) PutStream(name string, fsync bool) (store.BlobWriter, error) {
	if b.fail(name) {
		return nil, errDiskGone
	}
	return b.Backend.PutStream(name, fsync)
}

// TestWritebackFailedSurfaces: a queued eviction writeback that fails
// must resurrect the tenant (no learning lost), count a writeback
// failure, and publish notify.WritebackFailed — the event the cluster
// layer folds into degraded-mode accounting.
func TestWritebackFailedSurfaces(t *testing.T) {
	t.Parallel()
	bus := notify.NewBus()
	failed := bus.Subscribe(16, notify.WritebackFailed)
	broken := true
	cfg := testConfig(t.TempDir())
	cfg.Backend = &failingBackend{
		Backend: store.NewMemBackend(),
		fail:    func(name string) bool { return broken && name == "sato" },
	}
	cfg.IdleEvict = time.Minute
	cfg.Bus = bus
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	end := deliverSession(t, f, "sato", 0)
	if err := f.Deliver(Event{Household: "sato", At: end + 2*time.Minute, Kind: EventAdvance}); err != nil {
		t.Fatal(err)
	}
	f.Flush()

	st := f.Stats()
	if st.WritebackFailures == 0 {
		t.Fatalf("no writeback failure counted: %+v", st)
	}
	if st.Resident != 1 || st.Evictions != 0 {
		t.Fatalf("tenant not resurrected after failed writeback: %+v", st)
	}
	if st.JobRetries == 0 {
		t.Errorf("failed writeback never retried: %+v", st)
	}
	select {
	case ev := <-failed.C():
		if ev.Household != "sato" || !strings.Contains(ev.Err, "disk gone") {
			t.Errorf("WritebackFailed event %+v", ev)
		}
	default:
		t.Error("no WritebackFailed event on the bus")
	}

	// The disk comes back: the still-resident tenant checkpoints with
	// its learning intact.
	broken = false
	f.Stop()
	var c store.Checkpoint
	if err := store.LoadCheckpoint(cfg.Backend, "sato", &c); err != nil {
		t.Fatalf("no checkpoint after recovery: %v", err)
	}
	if len(c.Policies) == 0 || c.Policies[0].Episodes != 1 {
		t.Errorf("recovered checkpoint lost learning: %+v", c.Policies)
	}
}

// TestSlowSubscriberDoesNotBlockFleet: a bus listener that never drains
// must cost only dropped events — the soak (shard loops publishing from
// their drain paths) still completes.
func TestSlowSubscriberDoesNotBlockFleet(t *testing.T) {
	t.Parallel()
	bus := notify.NewBus()
	_ = bus.Subscribe(1) // all kinds, never read
	res, err := Soak(SoakConfig{
		Seed:       5,
		Households: 32,
		Sessions:   3,
		Shards:     4,
		Dir:        t.TempDir(),
		Bus:        bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Fatal("soak delivered nothing")
	}
	st := bus.Stats()
	if st.Published == 0 || st.Dropped == 0 {
		t.Fatalf("slow subscriber not exercised: %+v", st)
	}
}

// TestBusEventStream: a drained subscriber sees the fleet's life as
// events — dirty transitions, queued evictions, checkpoint waves — with
// counts consistent with the fleet's own stats.
func TestBusEventStream(t *testing.T) {
	t.Parallel()
	bus := notify.NewBus()
	l := bus.Subscribe(4096)
	counts := make(map[notify.Kind]int)
	checkpointed := 0
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range l.C() {
			counts[ev.Kind]++
			if ev.Kind == notify.CheckpointDone {
				checkpointed += ev.Count
			}
		}
	}()
	res, err := Soak(SoakConfig{
		Seed:       5,
		Households: 32,
		Sessions:   4,
		Shards:     2,
		Dir:        t.TempDir(),
		Bus:        bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	<-drained
	if bus.Stats().Dropped != 0 {
		t.Fatalf("buffer too small, events dropped: %+v", bus.Stats())
	}
	if counts[notify.TenantDirty] == 0 || counts[notify.EvictionQueued] != res.Stats.Evictions {
		t.Errorf("event counts %v vs stats %+v", counts, res.Stats)
	}
	if checkpointed != res.Stats.Checkpoints {
		t.Errorf("CheckpointDone counts sum to %d, stats say %d", checkpointed, res.Stats.Checkpoints)
	}
}
