package fleet

import (
	"net"
	"testing"
	"time"

	"coreda"
	"coreda/internal/adl"
	"coreda/internal/wire"
)

// dialNode connects a fake node and returns the conn plus a reader for
// server-to-node frames.
func dialNode(t *testing.T, addr string) (net.Conn, *wire.Reader) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, wire.NewReader(c)
}

func sendPacket(t *testing.T, c net.Conn, p wire.Packet) {
	t.Helper()
	frame, err := wire.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
}

// awaitEvents polls the fleet until the usage-event counter reaches want.
func awaitEvents(t *testing.T, f *Fleet, want int) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := f.Stats()
		if st.Events >= want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d events; stats %+v", want, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startServer brings up a fleet server on a loopback listener.
func startServer(t *testing.T, fcfg Config, scfg ServeConfig) (*Fleet, *Server, string) {
	t.Helper()
	f, err := New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(f, scfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	go srv.Serve(l)
	t.Cleanup(func() {
		srv.Stop()
		f.Stop()
		l.Close()
	})
	return f, srv, l.Addr().String()
}

// TestServeRoutesByHello pins the versioned household handshake: two
// nodes greeting as different households must land in different tenants,
// and each usage report must be acked.
func TestServeRoutesByHello(t *testing.T) {
	f, _, addr := startServer(t, testConfig(t.TempDir()), ServeConfig{Speed: 100})

	ca, ra := dialNode(t, addr)
	cb, rb := dialNode(t, addr)
	sendPacket(t, ca, &wire.Hello{UID: uint16(adl.ToolTeaBox), Seq: 1, HelloVersion: wire.HelloVersion, Household: "yamada"})
	sendPacket(t, cb, &wire.Hello{UID: uint16(adl.ToolTeaBox), Seq: 1, HelloVersion: wire.HelloVersion, Household: "suzuki"})
	for _, r := range []*wire.Reader{ra, rb} {
		pkt, err := r.ReadPacket()
		if err != nil {
			t.Fatal(err)
		}
		if ack, ok := pkt.(*wire.Ack); !ok || ack.Seq != 1 {
			t.Fatalf("hello answered with %v", pkt)
		}
	}

	sendPacket(t, ca, &wire.UsageStart{UID: uint16(adl.ToolTeaBox), Seq: 2, Hits: 5})
	sendPacket(t, cb, &wire.UsageStart{UID: uint16(adl.ToolTeaBox), Seq: 2, Hits: 5})
	awaitEvents(t, f, 2)

	for _, want := range []string{"yamada", "suzuki"} {
		var accepted int
		if err := f.Do(want, func(tn *Tenant) error {
			accepted = tn.System.Stats().AcceptedSteps
			return nil
		}); err != nil {
			t.Fatalf("household %s: %v", want, err)
		}
		if accepted != 1 {
			t.Errorf("household %s accepted %d steps, want 1", want, accepted)
		}
	}
}

// TestServeDefaultHousehold pins backward compatibility: a legacy node
// that never says hello is served as the configured default household.
func TestServeDefaultHousehold(t *testing.T) {
	f, _, addr := startServer(t, testConfig(t.TempDir()),
		ServeConfig{Speed: 100, DefaultHousehold: "home"})

	c, r := dialNode(t, addr)
	sendPacket(t, c, &wire.UsageStart{UID: uint16(adl.ToolTeaBox), Seq: 9, Hits: 3})
	if pkt, err := r.ReadPacket(); err != nil {
		t.Fatal(err)
	} else if ack, ok := pkt.(*wire.Ack); !ok || ack.Seq != 9 {
		t.Fatalf("usage answered with %v", pkt)
	}
	awaitEvents(t, f, 1)
	if err := f.Do("home", func(tn *Tenant) error { return nil }); err != nil {
		t.Fatalf("default household not admitted: %v", err)
	}
}

// TestServeDropsPreHelloTrafficWithoutDefault pins the strict mode: no
// hello, no default household, no traffic.
func TestServeDropsPreHelloTrafficWithoutDefault(t *testing.T) {
	f, _, addr := startServer(t, testConfig(t.TempDir()), ServeConfig{Speed: 100})

	c, _ := dialNode(t, addr)
	sendPacket(t, c, &wire.UsageStart{UID: uint16(adl.ToolTeaBox), Seq: 1, Hits: 3})
	sendPacket(t, c, &wire.Hello{UID: uint16(adl.ToolTeaBox), Seq: 2, HelloVersion: wire.HelloVersion, Household: "late"})
	sendPacket(t, c, &wire.UsageStart{UID: uint16(adl.ToolTeaBox), Seq: 3, Hits: 3})
	st := awaitEvents(t, f, 1)
	if st.Events != 1 {
		t.Errorf("events = %d, want only the post-hello one", st.Events)
	}
	var accepted int
	if err := f.Do("late", func(tn *Tenant) error {
		accepted = tn.System.Stats().AcceptedSteps
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if accepted != 1 {
		t.Errorf("post-hello traffic not routed: accepted = %d", accepted)
	}
}

// TestServeLEDWriteBack pins the reminder loop at fleet scale: a
// household in assist mode with an empty policy reminds on its first
// idle timeout, and the LED command must come back on that household's
// node connection.
func TestServeLEDWriteBack(t *testing.T) {
	fcfg := testConfig(t.TempDir())
	fcfg.NewSystem = func(household string) (coreda.SystemConfig, error) {
		return coreda.SystemConfig{
			Activity:    adl.TeaMaking(),
			UserName:    household,
			Seed:        SeedFor(7, household),
			DefaultMode: coreda.ModeAssist,
		}, nil
	}
	f, _, addr := startServer(t, fcfg, ServeConfig{Speed: 200})

	// Train the tenant so the assist session has firm expectations.
	canonical := adl.TeaMaking().CanonicalRoutine()
	if err := f.Do("mori", func(tn *Tenant) error {
		episodes := make([][]coreda.StepID, 20)
		for i := range episodes {
			episodes[i] = canonical
		}
		return tn.System.TrainEpisodes(episodes)
	}); err != nil {
		t.Fatal(err)
	}

	// Both the first tool's node and the expected-next tool's node greet
	// on one connection; the reminder's LED must come back on it.
	c, r := dialNode(t, addr)
	sendPacket(t, c, &wire.Hello{UID: uint16(adl.ToolTeaBox), Seq: 1, HelloVersion: wire.HelloVersion, Household: "mori"})
	sendPacket(t, c, &wire.Hello{UID: uint16(adl.ToolPot), Seq: 2, HelloVersion: wire.HelloVersion, Household: "mori"})
	sendPacket(t, c, &wire.UsageStart{UID: uint16(adl.ToolTeaBox), Seq: 3, Hits: 5})
	awaitEvents(t, f, 1)

	// At 200x speed the 30 s idle timeout fires ~150 ms after the step;
	// the resulting reminder blinks a LED on the node's connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.SetReadDeadline(deadline)
		pkt, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("no LED command before deadline: %v", err)
		}
		if led, ok := pkt.(*wire.LEDCommand); ok {
			if led.Blinks == 0 {
				t.Errorf("LED command with zero blinks: %+v", led)
			}
			return
		}
	}
}

// TestServeRedirectsForeignHousehold pins cluster routing: a hello for a
// household the Route hook places elsewhere is answered with a Redirect
// naming the owner, and the connection stays unbound — traffic on it is
// not misdelivered into a local tenant.
func TestServeRedirectsForeignHousehold(t *testing.T) {
	route := func(household string) (string, bool) {
		if household == "foreign" {
			return "10.0.0.9:7001", false
		}
		return "", true
	}
	f, _, addr := startServer(t, testConfig(t.TempDir()), ServeConfig{Speed: 100, Route: route})

	c, r := dialNode(t, addr)
	sendPacket(t, c, &wire.Hello{UID: 3, Seq: 9, HelloVersion: wire.HelloVersion, Household: "foreign"})
	pkt, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	rd, ok := pkt.(*wire.Redirect)
	if !ok || rd.Addr != "10.0.0.9:7001" || rd.Seq != 9 {
		t.Fatalf("hello answered with %+v, want redirect to 10.0.0.9:7001", pkt)
	}
	// Usage after a redirected hello must be dropped, not admitted.
	sendPacket(t, c, &wire.UsageStart{UID: 3, Seq: 10, Hits: 5})

	// A local household on the same server still routes normally.
	c2, r2 := dialNode(t, addr)
	sendPacket(t, c2, &wire.Hello{UID: 4, Seq: 1, HelloVersion: wire.HelloVersion, Household: "local"})
	if pkt, err := r2.ReadPacket(); err != nil {
		t.Fatal(err)
	} else if ack, ok := pkt.(*wire.Ack); !ok || ack.Seq != 1 {
		t.Fatalf("local hello answered with %+v", pkt)
	}
	sendPacket(t, c2, &wire.UsageStart{UID: 4, Seq: 2, Hits: 5})
	st := awaitEvents(t, f, 1)
	if st.Events != 1 || st.Admissions != 1 {
		t.Errorf("stats = %+v, want exactly the local event admitted", st)
	}
}
