// Package fleet is CoReDA's multi-tenant serving runtime: it multiplexes
// many households — each a full Hub + sim.Scheduler + learned policies —
// across a fixed pool of shard event loops, so one process serves
// thousands of homes instead of one.
//
// Concurrency model: households are hashed onto shards (ShardOf), and
// each shard runs exactly one goroutine that owns every tenant resident
// on it. A tenant therefore stays single-threaded, exactly as the
// Hub/System contract requires; the shard loop is the only place its
// scheduler is pumped. Tenants share no state, so a tenant's learned
// policy depends only on its own event sequence — which is why per-tenant
// policy files are byte-identical at any shard count (the repo's
// signature determinism guarantee, gated in scripts/check.sh).
//
// Tenants are admitted lazily: the first event for an unknown household
// builds its stack and, if a checkpoint blob exists in the storage
// backend (store.Backend; the local-dir backend over Config.Dir by
// default), restores the learned policy from it (crash recovery and
// idle-eviction recovery share this path). Idle tenants are evicted with
// a final checkpoint; periodic batch checkpointing streams every dirty
// tenant of a shard through the backend's atomic, generation-rotating
// writes.
//
// Like parrun for the experiments layer, fleet is a sanctioned
// concurrency boundary of the otherwise single-threaded simulation
// stack; everything a shard loop calls into obeys the single-threaded
// rule.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"coreda"
	"coreda/internal/notify"
	"coreda/internal/parrun"
	"coreda/internal/queue"
	"coreda/internal/reminding"
	"coreda/internal/retry"
	"coreda/internal/store"
	"coreda/internal/wire"
)

// ControlMode selects how a shard executes its control-plane writes —
// eviction writebacks and checkpoint waves.
type ControlMode int

// Control modes.
const (
	// ControlQueue (the default) routes control writes through a
	// per-shard internal/queue: evictions and checkpoints become typed
	// jobs drained at the same batch boundaries as before, with
	// retry-with-backoff on failure. Dispatch order is deterministic
	// (stable priority + FIFO), so policy files — and the parity digest
	// — are byte-identical to ControlInline (gated in check.sh).
	ControlQueue ControlMode = iota
	// ControlInline is the pre-queue path: writes run directly on the
	// drain loop via the parrun pool, with no retries. Kept as the
	// parity baseline the queue-backed control plane is diffed against.
	ControlInline
)

// AdvanceMode selects how a shard finds the tenants a clock-pump tick
// must touch.
type AdvanceMode int

// Advance modes.
const (
	// AdvanceIndexed (the default) consults the shard's due-time tenant
	// index: a tick only touches tenants whose next timer or
	// idle-eviction deadline is <= the pump time, in (due, household)
	// order. A tick over a shard of idle tenants is O(1).
	AdvanceIndexed AdvanceMode = iota
	// AdvanceSweep is the pre-index path: every resident tenant is swept
	// in lexical household order on every tick, O(resident) regardless
	// of due work. Kept as the parity baseline the indexed path is
	// diffed against (TestAdvanceParity, scripts/check.sh) and as the
	// bench baseline for BenchmarkAdvanceIdleSweep.
	AdvanceSweep
)

// Control-plane job classes and priorities: eviction writebacks drain
// before checkpoint writes at a shared boundary (an evicted tenant's
// file is its final state; a dirty tenant's file will be rewritten).
const (
	classEviction   queue.Class = "eviction"
	classCheckpoint queue.Class = "checkpoint"
	priEviction                 = 0
	priCheckpoint               = 1
)

// ctlRetry is the control-job retry schedule: three attempts with a
// sub-millisecond backoff, enough to ride out transient filesystem
// hiccups without stretching a drain boundary.
func ctlRetry() retry.Policy {
	return retry.Policy{Attempts: 3, Base: 250 * time.Microsecond, Cap: time.Millisecond, Jitter: 0.5}
}

// Config parameterizes a Fleet.
type Config struct {
	// Shards is the number of shard event loops (and goroutines)
	// households are hashed across. Zero means runtime.GOMAXPROCS(0).
	Shards int
	// Dir is the checkpoint directory: each household persists to
	// <Dir>/<household>.ckpt via the store's crash-safe rotation
	// (pre-binary <household>.json checkpoints load and migrate
	// transparently). Ignored when Backend is set.
	Dir string
	// Backend overrides where checkpoints live. Nil means the local-dir
	// backend rooted at Dir.
	Backend store.Backend
	// Format selects the encoding of written checkpoints; the zero
	// value is the binary CKPT format. Loads sniff the blob content, so
	// the flag never affects what can be read.
	Format store.Format
	// NewSystem builds the system configuration for a household admitted
	// for the first time (or re-admitted after eviction). Required. The
	// returned config's Seed should be derived from the household ID
	// (see SeedFor) so every tenant learns on its own random stream.
	NewSystem func(household string) (coreda.SystemConfig, error)
	// LEDs, if non-nil, supplies the reminder-LED sink for each admitted
	// household (the serving layer wires node connections through this).
	// A non-nil SystemConfig.LEDs from NewSystem wins.
	LEDs func(household string) reminding.LEDs
	// IdleEvict evicts a tenant whose virtual clock has advanced this
	// far past its last event, checkpointing it first. Eviction is
	// driven purely by the tenant's own virtual time, so it happens
	// identically at any shard count. Zero disables eviction.
	IdleEvict time.Duration
	// OnLog receives human-readable event lines. Calls are serialized
	// across shards; may be nil.
	OnLog func(string)
	// Control selects the control-plane execution path; the zero value
	// is the queue-backed one (ControlQueue).
	Control ControlMode
	// Advance selects how clock-pump ticks find due tenants; the zero
	// value is the due-time index (AdvanceIndexed). Both modes produce
	// byte-identical policy files — the sweep is kept only as the parity
	// and bench baseline.
	Advance AdvanceMode
	// Bus, if non-nil, receives control-plane events (notify.TenantDirty,
	// EvictionQueued, CheckpointDone, WritebackFailed). Publishing never
	// blocks a shard loop; correctness never depends on delivery.
	Bus *notify.Bus
	// JobInject, if non-nil, supplies each shard's chaos injection hook
	// for control-queue jobs (see chaos.Plan.JobInjector). Ignored
	// under ControlInline.
	JobInject func(shard int) queue.InjectFunc
}

// EventKind says what a fleet event carries.
type EventKind int

// Event kinds.
const (
	// EventUsage is a tool-usage report for a household.
	EventUsage EventKind = iota + 1
	// EventNodeState is a node-liveness transition for a household tool.
	EventNodeState
	// EventAdvance only advances the household's virtual clock (firing
	// due timers, and the idle-eviction check) without delivering
	// traffic.
	EventAdvance
)

// Event is one unit of tenant traffic, routed to the owning shard.
type Event struct {
	// Household is the tenant the event belongs to.
	Household string
	// At is the event time on the household's virtual clock. Times must
	// be non-decreasing per household.
	At time.Duration
	// Kind selects which of the fields below is meaningful.
	Kind EventKind
	// Usage is the usage event (EventUsage). Its At field is overwritten
	// with the event's At.
	Usage coreda.UsageEvent
	// Tool and Online describe a node transition (EventNodeState).
	Tool   coreda.ToolID
	Online bool
}

// Stats aggregates fleet counters across shards.
type Stats struct {
	// Events counts usage events delivered to tenants.
	Events int
	// NodeStates counts node-liveness transitions delivered.
	NodeStates int
	// Admissions counts tenant spin-ups (first events and re-admissions
	// after eviction); Recovered counts the admissions that restored a
	// checkpoint file.
	Admissions int
	Recovered  int
	// Evictions counts idle tenants checkpointed and released.
	Evictions int
	// Checkpoints counts policy files written (evictions included).
	Checkpoints int
	// RecoveryErrors counts admissions whose checkpoint file (and its
	// backup) was unreadable; the tenant started fresh instead.
	RecoveryErrors int
	// Resident is the number of tenants in memory at snapshot time.
	Resident int
	// Dropped counts events discarded because their household ID was
	// invalid or admission failed.
	Dropped int
	// WritebackFailures counts queued eviction writebacks that failed
	// (after retries, under ControlQueue); each resurrected its tenant
	// and published a notify.WritebackFailed event.
	WritebackFailures int
	// JobRetries counts extra control-job attempts beyond the first
	// (real failures plus chaos-injected ones); always zero under
	// ControlInline, which does not retry.
	JobRetries int
}

func (s *Stats) add(o Stats) {
	s.Events += o.Events
	s.NodeStates += o.NodeStates
	s.Admissions += o.Admissions
	s.Recovered += o.Recovered
	s.Evictions += o.Evictions
	s.Checkpoints += o.Checkpoints
	s.RecoveryErrors += o.RecoveryErrors
	s.Resident += o.Resident
	s.Dropped += o.Dropped
	s.WritebackFailures += o.WritebackFailures
	s.JobRetries += o.JobRetries
}

// Fleet lifecycle states (Fleet.state).
const (
	fleetBuilt uint32 = iota
	fleetStarted
	fleetStopped
)

// Fleet is the sharded household runtime. Build with New, call Start,
// route traffic with Deliver, and Stop to drain and checkpoint.
type Fleet struct {
	cfg     Config
	backend store.Backend
	shards  []*shard

	// state is the lifecycle flag, atomic so the per-event Deliver fast
	// path does not serialize every caller through a mutex.
	state atomic.Uint32

	mu sync.Mutex // serializes OnLog
}

// msg is one shard-loop work item: an event, or a control closure (Do,
// flush, stop) run on the loop goroutine where tenants may be touched.
type msg struct {
	ev Event
	fn func(*shard)
}

// shard is one event loop and the tenants resident on it. All fields are
// owned by the loop goroutine after Start.
type shard struct {
	f       *Fleet
	idx     int
	in      chan msg
	done    chan struct{}
	quit    bool
	tenants map[string]*Tenant
	stats   Stats

	// lastID/lastT cache the most recently touched tenant, so a burst of
	// events from one household costs one map lookup instead of one per
	// event.
	lastID string
	lastT  *Tenant
	// dirty is the set of tenants with events since their last
	// checkpoint: batch checkpoints serialize only these households
	// instead of sweeping every resident. Invariant: a tenant is in dirty
	// iff its on-disk policy is behind its in-memory one.
	dirty map[string]*Tenant
	// flushIDs is the reusable scratch for flush's deterministic
	// (sorted) checkpoint order.
	flushIDs []string
	// due is the due-time tenant index: an intrusive min-heap over the
	// resident tenants that have any due work coming — a pending
	// scheduler timer, or an idle-eviction deadline — keyed by
	// (Tenant.dueAt, Tenant.ID). Tenants with neither (idle households
	// with eviction disabled, or fully quiesced) are simply absent, so
	// an advance tick never touches them. Maintained on admit, deliver,
	// Do, eviction and resurrection via refreshDue/dueRemove.
	due []*Tenant
	// sweepIDs is the reusable scratch of the sweep-mode advance (the
	// pre-index baseline), so even the baseline allocates nothing per
	// tick.
	sweepIDs []string
	// tickSeq/tickAt record the shard-wide clock pumps: tickSeq counts
	// them and tickAt is the latest pump time. Together with
	// Tenant.tickSeq (the count snapshotted at admission) they give the
	// indexed advance the sweep's exact clock semantics lazily: a sweep
	// raises every resident tenant's clock to the tick time, so an event
	// stamped earlier than a tick that preceded it on the shard queue is
	// processed at the tick time; the indexed path leaves idle tenants
	// untouched and instead applies tickAt as a floor in handle — but
	// only for tenants admitted before the tick, because a sweep never
	// advanced tenants admitted after it.
	tickSeq uint64
	tickAt  time.Duration
	// evictq holds tenants already removed from the resident map whose
	// final checkpoint write is still pending: eviction writes are
	// batched at drain-batch boundaries (drainEvictions) so a sweep of
	// idle tenants pays one parallel write wave instead of one blocking
	// file rotation per event.
	evictq []*Tenant
	// known is the set of households with a checkpoint file (or rotated
	// backup) on disk: the directory listing taken once at New, plus
	// every file this shard wrote since. Admission consults it instead
	// of probing the filesystem, so a first-contact household costs zero
	// failed opens. The fleet owns its checkpoint directory exclusively
	// while running (the same single-writer assumption the crash-safe
	// rotation already relies on), so the set cannot go stale.
	known map[string]bool
	// saver holds the reusable checkpoint encode buffers shared by every
	// tenant on this shard.
	saver store.MultiSaver
	// psavers are the per-worker savers of the parallel write paths,
	// created lazily and reused across flushes; free is the checkout
	// channel control-queue jobs borrow them through.
	psavers []*store.MultiSaver
	free    chan *store.MultiSaver
	// ctl is the shard's control-plane queue (ControlQueue mode); nil
	// under ControlInline. Eviction writebacks and checkpoint waves are
	// enqueued on it and drained at the same boundaries the inline path
	// used — the queue changes who runs the writes, never when they are
	// complete (Drain is a synchronization point).
	ctl *queue.Queue
}

// flushWriters is how many checkpoint files a batch flush writes
// concurrently. The work is blocking file I/O (create, write, fsync,
// rename), so overlapping it pays even on a single CPU.
const flushWriters = 8

// minParallelFlush is the dirty-set size below which a flush stays
// serial: a handful of files is not worth the pool round trip.
const minParallelFlush = 4

// maxBatch bounds how many work items a shard loop dispatches before it
// services the eviction write queue. Without the cap a sustained
// producer would keep the drain loop spinning and defer queued eviction
// checkpoints indefinitely.
const maxBatch = 128

// New validates the configuration and builds the shard pool.
func New(cfg Config) (*Fleet, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.NewSystem == nil {
		return nil, fmt.Errorf("fleet: Config.NewSystem is required")
	}
	if cfg.Backend == nil {
		if cfg.Dir == "" {
			return nil, fmt.Errorf("fleet: Config.Dir or Config.Backend is required")
		}
		b, err := store.NewDirBackend(cfg.Dir)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		cfg.Backend = b
	}
	f := &Fleet{cfg: cfg, backend: cfg.Backend}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			f:       f,
			idx:     i,
			in:      make(chan msg, 256),
			done:    make(chan struct{}),
			tenants: make(map[string]*Tenant),
			dirty:   make(map[string]*Tenant),
			known:   make(map[string]bool),
		}
		s.saver.Format = cfg.Format
		if cfg.Control == ControlQueue {
			var inject queue.InjectFunc
			if cfg.JobInject != nil {
				inject = cfg.JobInject(i)
			}
			s.ctl = queue.New(queue.Config{
				Workers: flushWriters,
				Permits: map[queue.Class]int{
					classEviction:   flushWriters,
					classCheckpoint: flushWriters,
				},
				Retry:  ctlRetry(),
				Seed:   int64(i),
				Stream: "fleet/ctl",
				Inject: inject,
			})
		}
		f.shards = append(f.shards, s)
	}
	// One backend enumeration seeds every shard's known-checkpoint set,
	// so admissions never probe the store for households that have never
	// been persisted.
	err := f.backend.Enumerate(func(name string) {
		if !ValidHousehold(name) {
			return
		}
		f.shards[ShardOf(name, len(f.shards))].known[name] = true
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return f, nil
}

// Shards returns the shard count households are hashed across.
func (f *Fleet) Shards() int { return len(f.shards) }

// Start spawns the shard event loops.
func (f *Fleet) Start() {
	if !f.state.CompareAndSwap(fleetBuilt, fleetStarted) {
		return
	}
	for _, s := range f.shards {
		go s.run()
	}
}

// Deliver routes one event to its household's shard, blocking while the
// shard's queue is full (backpressure). Events for the same household
// must come from one goroutine (or be externally ordered); their At
// values must be non-decreasing.
func (f *Fleet) Deliver(ev Event) error {
	if !ValidHousehold(ev.Household) {
		return fmt.Errorf("fleet: invalid household ID %q", ev.Household)
	}
	if f.state.Load() != fleetStarted {
		return fmt.Errorf("fleet: not running")
	}
	f.shards[ShardOf(ev.Household, len(f.shards))].in <- msg{ev: ev}
	return nil
}

// Do runs fn on the household's shard loop, admitting the tenant if it
// is not resident, and waits for it to finish. The tenant must not be
// retained after fn returns.
func (f *Fleet) Do(household string, fn func(*Tenant) error) error {
	if !ValidHousehold(household) {
		return fmt.Errorf("fleet: invalid household ID %q", household)
	}
	if f.state.Load() != fleetStarted {
		return fmt.Errorf("fleet: not running")
	}
	res := make(chan error, 1)
	f.shards[ShardOf(household, len(f.shards))].in <- msg{fn: func(s *shard) {
		t, err := s.admit(household)
		if err != nil {
			res <- err
			return
		}
		err = fn(t)
		// fn may have armed or cancelled timers (started a session, say):
		// recompute the tenant's slot in the due-time index.
		s.refreshDue(t)
		res <- err
	}}
	return <-res
}

// MarkKnown records that a checkpoint blob for household now exists in
// the backend, without admitting the tenant. The cluster layer calls it
// when a replica or handoff blob arrives out-of-band (written to the
// backend by the peer link, not by this fleet), so a later admission
// restores from the blob instead of starting fresh.
func (f *Fleet) MarkKnown(household string) error {
	if !ValidHousehold(household) {
		return fmt.Errorf("fleet: invalid household ID %q", household)
	}
	if f.state.Load() != fleetStarted {
		return fmt.Errorf("fleet: not running")
	}
	res := make(chan struct{})
	f.shards[ShardOf(household, len(f.shards))].in <- msg{fn: func(s *shard) {
		s.known[household] = true
		close(res)
	}}
	<-res
	return nil
}

// EvictNow checkpoints and releases one resident tenant immediately —
// the sending half of a cluster handoff, which must flush the tenant's
// final state to the backend before shipping the blob to the new owner.
// A household that is not resident is a no-op (its checkpoint, if any,
// is already on disk).
func (f *Fleet) EvictNow(household string) error {
	if !ValidHousehold(household) {
		return fmt.Errorf("fleet: invalid household ID %q", household)
	}
	if f.state.Load() != fleetStarted {
		return fmt.Errorf("fleet: not running")
	}
	res := make(chan error, 1)
	f.shards[ShardOf(household, len(f.shards))].in <- msg{fn: func(s *shard) {
		res <- s.evictNow(household)
	}}
	return <-res
}

// evictNow force-evicts one household on the loop goroutine, fsyncing
// its final checkpoint. A pending queued eviction write is completed
// first, so the on-disk blob is the tenant's final state either way.
func (s *shard) evictNow(household string) error {
	if len(s.evictq) > 0 {
		s.writebackEvicted(household)
	}
	t, ok := s.tenants[household]
	if !ok {
		return nil
	}
	if err := t.save(s.f.backend, &s.saver, true); err != nil {
		return err
	}
	delete(s.dirty, household)
	s.known[household] = true
	s.stats.Checkpoints++
	s.publishCheckpointDone(1)
	delete(s.tenants, household)
	s.dueRemove(t)
	if s.lastT == t {
		s.lastID, s.lastT = "", nil
	}
	s.stats.Evictions++
	s.f.log("shard %d: evicted %s (handoff)", s.idx, household)
	return nil
}

// barrier runs fn on every shard loop and waits for all of them.
func (f *Fleet) barrier(fn func(*shard)) {
	var wg sync.WaitGroup
	wg.Add(len(f.shards))
	for _, s := range f.shards {
		s.in <- msg{fn: func(s *shard) {
			defer wg.Done()
			fn(s)
		}}
	}
	wg.Wait()
}

// advanceAll moves every tenant with due work's virtual clock to at
// least `to`, firing due timers and the idle-eviction check. The serving
// layer calls this from its wall-clock pump; it does not wait for
// completion. The tick is encoded as a household-less EventAdvance
// message rather than a control closure, so a pump tick allocates
// nothing (a closure would heap-allocate its captured deadline).
func (f *Fleet) advanceAll(to time.Duration) {
	for _, s := range f.shards {
		s.in <- msg{ev: Event{Kind: EventAdvance, At: to}}
	}
}

// Advance asks every shard to move its due tenants' virtual clocks to
// at least to — the external clock pump, for serving layers (and idle
// benchmarks) driving the fleet off their own wall or virtual clock.
// It does not wait for the ticks to be processed; a Stats call is a
// barrier if the caller needs one. to values should be non-decreasing,
// and events delivered after an Advance should not be stamped before it
// (a monotone source clock gives both for free).
func (f *Fleet) Advance(to time.Duration) error {
	if f.state.Load() != fleetStarted {
		return fmt.Errorf("fleet: not running")
	}
	f.advanceAll(to)
	return nil
}

// Flush checkpoints every dirty tenant on every shard (batch per-shard
// checkpointing) and waits for the writes to finish. Periodic flushes
// are incremental: only households with events since their last
// checkpoint are serialized, and the files are not fsynced (the atomic
// rename keeps them process-crash-safe; Stop takes the fsynced final
// checkpoint).
func (f *Fleet) Flush() {
	if f.state.Load() != fleetStarted {
		return
	}
	f.barrier(func(s *shard) { s.flush(false) })
}

// Stats snapshots the aggregated counters (a barrier across shards).
func (f *Fleet) Stats() Stats {
	running := f.state.Load() == fleetStarted
	var out Stats
	if !running {
		for _, s := range f.shards {
			out.add(s.snapshot())
		}
		return out
	}
	var mu sync.Mutex
	f.barrier(func(s *shard) {
		st := s.snapshot()
		mu.Lock()
		out.add(st)
		mu.Unlock()
	})
	return out
}

// snapshot is one shard's counter view, folding in the control queue's
// retry count (the drain-level counters live in the queue).
func (s *shard) snapshot() Stats {
	st := s.stats
	st.Resident = len(s.tenants)
	if s.ctl != nil {
		st.JobRetries = s.ctl.Stats().Retried
	}
	return st
}

// Stop drains every shard, checkpoints all remaining dirty tenants
// (fsynced — the final checkpoint is the durable one), and joins the
// loops. Deliver/Do/Flush fail or no-op afterwards.
func (f *Fleet) Stop() {
	if !f.state.CompareAndSwap(fleetStarted, fleetStopped) {
		return
	}
	for _, s := range f.shards {
		s.in <- msg{fn: func(s *shard) {
			s.flush(true)
			s.quit = true
		}}
	}
	for _, s := range f.shards {
		<-s.done
	}
}

func (f *Fleet) log(format string, args ...any) {
	if f.cfg.OnLog == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.OnLog(fmt.Sprintf(format, args...))
}

// run is the shard event loop: the single goroutine owning this shard's
// tenants. After each blocking receive it drains whatever else is
// already queued (up to maxBatch items) before blocking again, so a
// burst of traffic pays one channel wakeup (and one scheduler round
// trip) instead of one per event. Eviction checkpoints queued during a
// batch are written — in parallel — at the batch boundary.
func (s *shard) run() {
	defer close(s.done)
	for !s.quit {
		s.dispatch(<-s.in)
	drain:
		for n := 1; !s.quit && n < maxBatch; n++ {
			select {
			case m := <-s.in:
				s.dispatch(m)
			default:
				break drain
			}
		}
		s.drainEvictions(false)
	}
}

// dispatch runs one work item on the loop goroutine. Control closures
// (Do, Flush, Stats, Stop, advanceAll) are synchronization points:
// queued eviction writes land before the closure runs, so an observer
// that has been through a barrier also sees the eviction checkpoints on
// disk.
func (s *shard) dispatch(m msg) {
	if m.fn != nil {
		s.drainEvictions(false)
		m.fn(s)
		return
	}
	if m.ev.Kind == EventAdvance && m.ev.Household == "" {
		// A shard-wide clock-pump tick (Fleet.advanceAll). Like control
		// closures it is a drain point, so eviction checkpoints cannot be
		// deferred past a tick. Deliver rejects empty households, so the
		// encoding cannot collide with tenant traffic.
		s.drainEvictions(false)
		s.advanceAll(m.ev.At)
		return
	}
	s.handle(m.ev)
}

// handle processes one event on the loop goroutine — the shard ingest
// path every delivered event funnels through.
//
//coreda:hotpath
func (s *shard) handle(ev Event) {
	t := s.lastT
	if t == nil || s.lastID != ev.Household {
		var err error
		t, err = s.admit(ev.Household)
		if err != nil {
			s.stats.Dropped++
			s.f.log("shard %d: admit %s: %v", s.idx, ev.Household, err)
			return
		}
		s.lastID, s.lastT = ev.Household, t
	}
	// The tenant clock never goes backwards: a late event is processed
	// at the tenant's current time (same policy as a real gateway, which
	// stamps arrival time). A shard-wide tick that preceded this event on
	// the queue is a floor too — the tenant may not have been touched by
	// the tick (the indexed advance skips non-due tenants), but a sweep
	// would have raised its clock, and the two modes must stay
	// byte-identical.
	at := ev.At
	if now := t.Sched.Now(); at < now {
		at = now
	}
	if t.tickSeq != s.tickSeq && at < s.tickAt {
		at = s.tickAt
	}
	t.Sched.RunUntil(at)
	switch ev.Kind {
	case EventUsage:
		u := ev.Usage
		u.At = at
		t.Hub.HandleUsage(u)
		t.lastEvent = at
		s.markDirty(t)
		s.stats.Events++
	case EventNodeState:
		t.Hub.HandleNodeState(ev.Tool, ev.Online)
		t.lastEvent = at
		s.markDirty(t)
		s.stats.NodeStates++
	case EventAdvance:
		// Clock only; the eviction check below does the rest.
	}
	if !s.maybeEvict(t) {
		s.refreshDue(t)
	}
}

// markDirty records that t has events since its last checkpoint. The
// first transition (per checkpoint cycle) is published as TenantDirty;
// repeat events on an already-dirty tenant publish nothing, so the bus
// sees dirty-set transitions, not traffic.
func (s *shard) markDirty(t *Tenant) {
	if bus := s.f.cfg.Bus; bus != nil {
		if _, ok := s.dirty[t.ID]; !ok {
			bus.Publish(notify.Event{Kind: notify.TenantDirty, Household: t.ID, Shard: s.idx})
		}
	}
	s.dirty[t.ID] = t
}

// admit returns the resident tenant, spinning it up from its checkpoint
// file (or fresh) on first contact.
func (s *shard) admit(household string) (*Tenant, error) {
	if t, ok := s.tenants[household]; ok {
		return t, nil
	}
	if len(s.evictq) > 0 {
		if t := s.writebackEvicted(household); t != nil {
			return t, nil
		}
	}
	cfg, err := s.f.cfg.NewSystem(household)
	if err != nil {
		return nil, err
	}
	if cfg.LEDs == nil && s.f.cfg.LEDs != nil {
		cfg.LEDs = s.f.cfg.LEDs(household)
	}
	t, recovered, err := newTenant(household, cfg, s.f.backend, s.known[household])
	if err != nil {
		return nil, err
	}
	s.tenants[household] = t
	// Ticks before admission never applied to this tenant (a sweep only
	// touches residents), so the floor in handle must ignore them.
	t.tickSeq = s.tickSeq
	s.refreshDue(t)
	s.stats.Admissions++
	switch recovered {
	case recoveredCheckpoint:
		s.stats.Recovered++
		s.f.log("shard %d: admitted %s from checkpoint (%d episodes)", s.idx, household, t.System.Planner().Episodes)
	case recoveredFresh:
		s.f.log("shard %d: admitted %s fresh", s.idx, household)
	case recoveredError:
		s.stats.RecoveryErrors++
		s.f.log("shard %d: admitted %s fresh (checkpoint unusable: %v)", s.idx, household, t.loadErr)
	}
	return t, nil
}

// maybeEvict releases a tenant idle past the deadline on its own
// virtual clock, reporting whether it did. Mid-session tenants are
// kept: a session in flight pins the tenant. The eviction decision (and
// the resident-map removal) is immediate and purely virtual-time-driven
// — identical at any shard count — but the final checkpoint write of a
// dirty tenant is queued and batched at the next drain boundary, where
// a sweep of evictions becomes one parallel write wave. The file bytes
// are a pure function of the tenant's state at eviction, so deferring
// the write cannot change any policy file or the parity digest.
func (s *shard) maybeEvict(t *Tenant) bool {
	d := s.f.cfg.IdleEvict
	if d <= 0 || t.System.Active() {
		return false
	}
	if t.Sched.Now()-t.lastEvent < d {
		return false
	}
	delete(s.tenants, t.ID)
	s.dueRemove(t)
	if s.lastT == t {
		s.lastID, s.lastT = "", nil
	}
	s.stats.Evictions++
	if _, dirty := s.dirty[t.ID]; dirty {
		// The queued write carries the tenant's final state; dirty
		// membership moves with it.
		delete(s.dirty, t.ID)
		s.evictq = append(s.evictq, t)
		if bus := s.f.cfg.Bus; bus != nil {
			bus.Publish(notify.Event{Kind: notify.EvictionQueued, Household: t.ID, Shard: s.idx})
		}
		return true
	}
	s.f.log("shard %d: evicted %s (idle %v)", s.idx, t.ID, t.Sched.Now()-t.lastEvent)
	return true
}

// drainEvictions writes the final checkpoints of tenants evicted since
// the last drain, in eviction order. Under ControlQueue the writes are
// control-queue jobs (retried with backoff, consumed by the shared
// writer pool); under ControlInline they run directly through parrun.
// Either way the shard loop blocks until every write returned, and a
// tenant whose write fails is re-admitted instead of losing its
// learning.
func (s *shard) drainEvictions(fsync bool) {
	if len(s.evictq) == 0 {
		return
	}
	if s.ctl != nil {
		pre := s.stats.Checkpoints
		s.enqueueEvictions(fsync)
		//coreda:vet-ignore droppederr per-job errors are handled by each job's Done (finishEvict)
		_ = s.ctl.Drain()
		s.publishCheckpointDone(s.stats.Checkpoints - pre)
		return
	}
	if len(s.evictq) >= minParallelFlush {
		s.ensurePsavers()
		free := make(chan *store.MultiSaver, len(s.psavers))
		for _, sv := range s.psavers {
			free <- sv
		}
		//coreda:vet-ignore droppederr per-write errors are the results; the worker never returns an outer error
		errs, _ := parrun.Map(len(s.evictq), len(s.psavers), func(i int) (error, error) {
			sv := <-free
			err := s.evictq[i].save(s.f.backend, sv, fsync)
			free <- sv
			return err, nil
		})
		pre := s.stats.Checkpoints
		for i, t := range s.evictq {
			s.finishEvict(t, errs[i])
		}
		s.clearEvictq()
		s.publishCheckpointDone(s.stats.Checkpoints - pre)
		return
	}
	pre := s.stats.Checkpoints
	for _, t := range s.evictq {
		s.finishEvict(t, t.save(s.f.backend, &s.saver, fsync))
	}
	s.clearEvictq()
	s.publishCheckpointDone(s.stats.Checkpoints - pre)
}

// enqueueEvictions turns the eviction queue into control-queue jobs (at
// eviction priority, ahead of checkpoint writes sharing the drain) and
// empties it; the caller owns the Drain. Each job borrows a pooled
// saver, writes one tenant's final checkpoint, and completes back on
// the loop goroutine via finishEvict.
func (s *shard) enqueueEvictions(fsync bool) {
	s.ensurePsavers()
	for _, t := range s.evictq {
		t := t
		s.ctl.Enqueue(queue.Job{
			Class:    classEviction,
			Priority: priEviction,
			Label:    t.ID,
			Run: func() error {
				sv := <-s.free
				err := t.save(s.f.backend, sv, fsync)
				s.free <- sv
				return err
			},
			Done: func(err error) { s.finishEvict(t, err) },
		})
	}
	s.clearEvictq()
}

// clearEvictq empties the eviction queue without dropping its capacity.
func (s *shard) clearEvictq() {
	for i := range s.evictq {
		s.evictq[i] = nil
	}
	s.evictq = s.evictq[:0]
}

// publishCheckpointDone announces a finished checkpoint wave of n files
// on the bus (no-op when nothing was written or no bus is wired).
func (s *shard) publishCheckpointDone(n int) {
	if n <= 0 {
		return
	}
	if bus := s.f.cfg.Bus; bus != nil {
		bus.Publish(notify.Event{Kind: notify.CheckpointDone, Shard: s.idx, Count: n})
	}
}

// finishEvict completes one queued eviction after its checkpoint write
// returned. On failure the tenant is resurrected — it never left memory
// — exactly as an inline eviction would have kept it; the failure is no
// longer silent: it counts as a writeback failure and is published on
// the bus, where the cluster layer folds it into degraded-mode
// accounting (notify.WritebackFailed).
func (s *shard) finishEvict(t *Tenant, err error) {
	if err != nil {
		s.f.log("shard %d: evict %s: %v", s.idx, t.ID, err)
		s.tenants[t.ID] = t
		s.dirty[t.ID] = t
		s.refreshDue(t)
		s.stats.Evictions--
		s.stats.WritebackFailures++
		if bus := s.f.cfg.Bus; bus != nil {
			bus.Publish(notify.Event{Kind: notify.WritebackFailed, Household: t.ID, Shard: s.idx, Err: err.Error()})
		}
		return
	}
	s.known[t.ID] = true
	s.stats.Checkpoints++
	s.f.log("shard %d: evicted %s (idle %v)", s.idx, t.ID, t.Sched.Now()-t.lastEvent)
}

// writebackEvicted force-completes a queued eviction write for one
// household (an event for it arrived before the batch boundary). It
// returns the tenant if the write failed and the tenant was resurrected
// as resident; otherwise nil, and the caller re-admits from the
// just-written file — byte-identical to the batched path.
func (s *shard) writebackEvicted(household string) *Tenant {
	for i, t := range s.evictq {
		if t.ID != household {
			continue
		}
		s.evictq = append(s.evictq[:i], s.evictq[i+1:]...)
		pre := s.stats.Checkpoints
		s.finishEvict(t, t.save(s.f.backend, &s.saver, false))
		s.publishCheckpointDone(s.stats.Checkpoints - pre)
		if rt, ok := s.tenants[household]; ok {
			return rt
		}
		return nil
	}
	return nil
}

// advanceAll pumps due tenants' clocks to `to`, firing their timers and
// the idle-eviction check. The indexed path pops the due-time heap: it
// touches exactly the tenants whose next timer or eviction deadline is
// <= to, in (due, household) order, and never wakes an idle household —
// a tick over a shard of quiesced tenants is a single heap peek.
//
// Termination: a popped tenant is reinserted only via refreshDue, and
// after RunUntil(to) its next timer is > to (RunUntil fires everything
// due, including timers armed by the fired callbacks), while an
// eviction deadline <= to would have evicted it (an Active tenant has
// no eviction component at all). So every reinserted due is > to and
// the loop pops each due tenant exactly once per tick.
//
//coreda:hotpath
func (s *shard) advanceAll(to time.Duration) {
	s.tickSeq++
	if to > s.tickAt {
		s.tickAt = to
	}
	if s.f.cfg.Advance == AdvanceSweep {
		s.advanceSweep(to)
		return
	}
	for len(s.due) > 0 && s.due[0].dueAt <= to {
		t := s.duePop()
		if to > t.Sched.Now() {
			t.Sched.RunUntil(to)
		}
		if !s.maybeEvict(t) {
			s.refreshDue(t)
		}
	}
}

// advanceSweep is the pre-index advance: every resident tenant is
// pumped in lexical household order, whether or not it has due work.
// Kept as the baseline the indexed path is diffed against
// (TestAdvanceParity) and benchmarked against; the sweep still
// maintains the due index so the modes can be switched freely. The
// sorted scratch is reused across ticks, so even the baseline allocates
// nothing per tick at steady state.
func (s *shard) advanceSweep(to time.Duration) {
	s.sweepIDs = s.sweepIDs[:0]
	for id := range s.tenants {
		s.sweepIDs = append(s.sweepIDs, id)
	}
	sort.Strings(s.sweepIDs)
	for _, id := range s.sweepIDs {
		t := s.tenants[id]
		if to > t.Sched.Now() {
			t.Sched.RunUntil(to)
		}
		if !s.maybeEvict(t) {
			s.refreshDue(t)
		}
	}
}

// tenantDue computes the earliest virtual time at which t has work a
// clock pump must deliver: its next scheduler timer, or — when idle
// eviction is on and no session pins it — its idle-eviction deadline.
// ok is false when the tenant has neither, i.e. it can sleep forever
// until external traffic arrives.
//
//coreda:hotpath
func (s *shard) tenantDue(t *Tenant) (time.Duration, bool) {
	next, ok := t.Sched.NextDue()
	if d := s.f.cfg.IdleEvict; d > 0 && !t.System.Active() {
		if ev := t.lastEvent + d; !ok || ev < next {
			next, ok = ev, true
		}
	}
	return next, ok
}

// refreshDue recomputes t's due time and moves it to the right place in
// the shard's due-time index — inserting, repositioning or removing it.
// Called after anything that can change a tenant's timers or eviction
// deadline: admission, event delivery, Do closures, a clock pump, and
// resurrection after a failed eviction writeback.
//
//coreda:hotpath
func (s *shard) refreshDue(t *Tenant) {
	at, ok := s.tenantDue(t)
	if !ok {
		s.dueRemove(t)
		return
	}
	if t.dueIdx < 0 {
		t.dueAt = at
		s.duePush(t)
		return
	}
	if t.dueAt != at {
		t.dueAt = at
		s.dueFix(int(t.dueIdx))
	}
}

// The due-time index is a hand-rolled intrusive binary min-heap over
// *Tenant, ordered by (dueAt, ID); Tenant.dueIdx tracks each element's
// position so removal and reposition are O(log n) without a search.
// container/heap would box every element through its interface and
// allocate on the hot pump path. Every primitive below is hotalloc-
// gated: the only allocation in the whole index is duePush's amortized
// slice growth, which escape analysis does not (and should not) flag.

func dueLess(a, b *Tenant) bool {
	if a.dueAt != b.dueAt {
		return a.dueAt < b.dueAt
	}
	return a.ID < b.ID
}

//coreda:hotpath
func (s *shard) duePush(t *Tenant) {
	t.dueIdx = int32(len(s.due))
	s.due = append(s.due, t)
	s.dueUp(len(s.due) - 1)
}

//coreda:hotpath
func (s *shard) duePop() *Tenant {
	t := s.due[0]
	n := len(s.due) - 1
	s.dueSwap(0, n)
	s.due[n] = nil
	s.due = s.due[:n]
	if n > 0 {
		s.dueDown(0)
	}
	t.dueIdx = -1
	return t
}

// dueRemove detaches t from the index; a tenant not in it is a no-op.
//
//coreda:hotpath
func (s *shard) dueRemove(t *Tenant) {
	i := int(t.dueIdx)
	if i < 0 {
		return
	}
	n := len(s.due) - 1
	if i != n {
		s.dueSwap(i, n)
	}
	s.due[n] = nil
	s.due = s.due[:n]
	if i != n {
		s.dueFix(i)
	}
	t.dueIdx = -1
}

// dueFix restores heap order after the element at i changed its key.
//
//coreda:hotpath
func (s *shard) dueFix(i int) {
	if !s.dueDown(i) {
		s.dueUp(i)
	}
}

func (s *shard) dueUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !dueLess(s.due[i], s.due[parent]) {
			break
		}
		s.dueSwap(i, parent)
		i = parent
	}
}

// dueDown sifts the element at i toward the leaves, reporting whether
// it moved (so dueFix knows to try sifting up instead).
func (s *shard) dueDown(i int) bool {
	n := len(s.due)
	i0 := i
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && dueLess(s.due[r], s.due[l]) {
			j = r
		}
		if !dueLess(s.due[j], s.due[i]) {
			break
		}
		s.dueSwap(i, j)
		i = j
	}
	return i > i0
}

func (s *shard) dueSwap(i, j int) {
	s.due[i], s.due[j] = s.due[j], s.due[i]
	s.due[i].dueIdx = int32(i)
	s.due[j].dueIdx = int32(j)
}

// flush checkpoints every dirty tenant (batch per-shard checkpointing).
// It walks the dirty set, not the full resident map, so the cost of a
// periodic flush scales with how many households actually changed;
// iteration is sorted for deterministic write order.
//
// Under ControlQueue the wave is one combined drain: pending eviction
// writebacks are enqueued at eviction priority, the sorted dirty set at
// checkpoint priority, and a single Drain runs both — the priority
// ordering reproduces the evictions-first sequencing the inline path
// gets from calling drainEvictions up front.
func (s *shard) flush(fsync bool) {
	if s.ctl != nil {
		s.flushQueued(fsync)
		return
	}
	s.drainEvictions(fsync)
	if len(s.dirty) == 0 {
		return
	}
	s.flushIDs = s.flushIDs[:0]
	for id := range s.dirty {
		s.flushIDs = append(s.flushIDs, id)
	}
	sort.Strings(s.flushIDs)
	pre := s.stats.Checkpoints
	if len(s.flushIDs) >= minParallelFlush {
		s.flushParallel(fsync)
	} else {
		for _, id := range s.flushIDs {
			if err := s.checkpoint(s.dirty[id], fsync); err != nil {
				s.f.log("shard %d: checkpoint %s: %v", s.idx, id, err)
			}
		}
	}
	s.publishCheckpointDone(s.stats.Checkpoints - pre)
}

// flushQueued is flush under ControlQueue: evictions and dirty-tenant
// checkpoints become jobs of one drain.
func (s *shard) flushQueued(fsync bool) {
	if len(s.evictq) == 0 && len(s.dirty) == 0 {
		return
	}
	pre := s.stats.Checkpoints
	if len(s.evictq) > 0 {
		s.enqueueEvictions(fsync)
	}
	s.ensurePsavers()
	s.flushIDs = s.flushIDs[:0]
	for id := range s.dirty {
		s.flushIDs = append(s.flushIDs, id)
	}
	sort.Strings(s.flushIDs)
	for _, id := range s.flushIDs {
		id, t := id, s.dirty[id]
		s.ctl.Enqueue(queue.Job{
			Class:    classCheckpoint,
			Priority: priCheckpoint,
			Label:    id,
			Run: func() error {
				sv := <-s.free
				err := t.save(s.f.backend, sv, fsync)
				s.free <- sv
				return err
			},
			Done: func(err error) {
				if err != nil {
					s.f.log("shard %d: checkpoint %s: %v", s.idx, id, err)
					return
				}
				delete(s.dirty, id)
				s.known[id] = true
				s.stats.Checkpoints++
			},
		})
	}
	//coreda:vet-ignore droppederr per-job errors are handled by each job's Done callback
	_ = s.ctl.Drain()
	s.publishCheckpointDone(s.stats.Checkpoints - pre)
}

// flushParallel writes the sorted dirty tenants' checkpoint files
// through a small parrun pool. This does not violate tenant ownership:
// the shard loop blocks until every write returns, each worker touches a
// distinct tenant (households have distinct files), and the dirty set
// and counters are updated back on the loop goroutine afterwards. File
// contents are a pure function of each tenant's state, so write order —
// the only thing the concurrency perturbs — cannot change any policy
// file or the parity digest.
func (s *shard) flushParallel(fsync bool) {
	s.ensurePsavers()
	free := make(chan *store.MultiSaver, len(s.psavers))
	for _, sv := range s.psavers {
		free <- sv
	}
	// The inner error is carried as the result so one failed tenant does
	// not abort the remaining writes.
	//coreda:vet-ignore droppederr per-write errors are the results; the worker never returns an outer error
	errs, _ := parrun.Map(len(s.flushIDs), len(s.psavers), func(i int) (error, error) {
		sv := <-free
		err := s.dirty[s.flushIDs[i]].save(s.f.backend, sv, fsync)
		free <- sv
		return err, nil
	})
	for i, id := range s.flushIDs {
		if errs[i] != nil {
			s.f.log("shard %d: checkpoint %s: %v", s.idx, id, errs[i])
			continue
		}
		delete(s.dirty, id)
		s.known[id] = true
		s.stats.Checkpoints++
	}
}

// ensurePsavers lazily builds the per-worker saver pool shared by the
// parallel write paths, plus the checkout channel control-queue jobs
// borrow savers through (filled once; every job returns its saver
// before Drain completes, so the pool stays full between waves).
func (s *shard) ensurePsavers() {
	if s.psavers != nil {
		return
	}
	s.psavers = make([]*store.MultiSaver, flushWriters)
	s.free = make(chan *store.MultiSaver, flushWriters)
	for i := range s.psavers {
		s.psavers[i] = &store.MultiSaver{Format: s.f.cfg.Format}
		s.free <- s.psavers[i]
	}
}

// checkpoint persists the tenant if it has unsaved events (it is in the
// shard's dirty set), clearing its dirty membership on success.
func (s *shard) checkpoint(t *Tenant, fsync bool) error {
	if _, ok := s.dirty[t.ID]; !ok {
		return nil
	}
	if err := t.save(s.f.backend, &s.saver, fsync); err != nil {
		return err
	}
	delete(s.dirty, t.ID)
	s.known[t.ID] = true
	s.stats.Checkpoints++
	return nil
}

// ValidHousehold reports whether id is usable as a household ID: 1 to
// wire.MaxHousehold bytes of letters, digits, '-', '_' or '.', not
// starting with a dot (IDs double as checkpoint file names).
func ValidHousehold(id string) bool {
	if len(id) == 0 || len(id) > wire.MaxHousehold || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}
