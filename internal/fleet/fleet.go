// Package fleet is CoReDA's multi-tenant serving runtime: it multiplexes
// many households — each a full Hub + sim.Scheduler + learned policies —
// across a fixed pool of shard event loops, so one process serves
// thousands of homes instead of one.
//
// Concurrency model: households are hashed onto shards (ShardOf), and
// each shard runs exactly one goroutine that owns every tenant resident
// on it. A tenant therefore stays single-threaded, exactly as the
// Hub/System contract requires; the shard loop is the only place its
// scheduler is pumped. Tenants share no state, so a tenant's learned
// policy depends only on its own event sequence — which is why per-tenant
// policy files are byte-identical at any shard count (the repo's
// signature determinism guarantee, gated in scripts/check.sh).
//
// Tenants are admitted lazily: the first event for an unknown household
// builds its stack and, if a checkpoint file exists in Config.Dir,
// restores the learned policy from it (crash recovery and idle-eviction
// recovery share this path). Idle tenants are evicted with a final
// checkpoint; periodic batch checkpointing flushes every dirty tenant of
// a shard through the store's crash-safe rotation.
//
// Like parrun for the experiments layer, fleet is a sanctioned
// concurrency boundary of the otherwise single-threaded simulation
// stack; everything a shard loop calls into obeys the single-threaded
// rule.
package fleet

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"coreda"
	"coreda/internal/reminding"
	"coreda/internal/wire"
)

// Config parameterizes a Fleet.
type Config struct {
	// Shards is the number of shard event loops (and goroutines)
	// households are hashed across. Zero means runtime.GOMAXPROCS(0).
	Shards int
	// Dir is the checkpoint directory: each household persists to
	// <Dir>/<household>.json via the store's crash-safe rotation.
	Dir string
	// NewSystem builds the system configuration for a household admitted
	// for the first time (or re-admitted after eviction). Required. The
	// returned config's Seed should be derived from the household ID
	// (see SeedFor) so every tenant learns on its own random stream.
	NewSystem func(household string) (coreda.SystemConfig, error)
	// LEDs, if non-nil, supplies the reminder-LED sink for each admitted
	// household (the serving layer wires node connections through this).
	// A non-nil SystemConfig.LEDs from NewSystem wins.
	LEDs func(household string) reminding.LEDs
	// IdleEvict evicts a tenant whose virtual clock has advanced this
	// far past its last event, checkpointing it first. Eviction is
	// driven purely by the tenant's own virtual time, so it happens
	// identically at any shard count. Zero disables eviction.
	IdleEvict time.Duration
	// OnLog receives human-readable event lines. Calls are serialized
	// across shards; may be nil.
	OnLog func(string)
}

// EventKind says what a fleet event carries.
type EventKind int

// Event kinds.
const (
	// EventUsage is a tool-usage report for a household.
	EventUsage EventKind = iota + 1
	// EventNodeState is a node-liveness transition for a household tool.
	EventNodeState
	// EventAdvance only advances the household's virtual clock (firing
	// due timers, and the idle-eviction check) without delivering
	// traffic.
	EventAdvance
)

// Event is one unit of tenant traffic, routed to the owning shard.
type Event struct {
	// Household is the tenant the event belongs to.
	Household string
	// At is the event time on the household's virtual clock. Times must
	// be non-decreasing per household.
	At time.Duration
	// Kind selects which of the fields below is meaningful.
	Kind EventKind
	// Usage is the usage event (EventUsage). Its At field is overwritten
	// with the event's At.
	Usage coreda.UsageEvent
	// Tool and Online describe a node transition (EventNodeState).
	Tool   coreda.ToolID
	Online bool
}

// Stats aggregates fleet counters across shards.
type Stats struct {
	// Events counts usage events delivered to tenants.
	Events int
	// NodeStates counts node-liveness transitions delivered.
	NodeStates int
	// Admissions counts tenant spin-ups (first events and re-admissions
	// after eviction); Recovered counts the admissions that restored a
	// checkpoint file.
	Admissions int
	Recovered  int
	// Evictions counts idle tenants checkpointed and released.
	Evictions int
	// Checkpoints counts policy files written (evictions included).
	Checkpoints int
	// RecoveryErrors counts admissions whose checkpoint file (and its
	// backup) was unreadable; the tenant started fresh instead.
	RecoveryErrors int
	// Resident is the number of tenants in memory at snapshot time.
	Resident int
	// Dropped counts events discarded because their household ID was
	// invalid or admission failed.
	Dropped int
}

func (s *Stats) add(o Stats) {
	s.Events += o.Events
	s.NodeStates += o.NodeStates
	s.Admissions += o.Admissions
	s.Recovered += o.Recovered
	s.Evictions += o.Evictions
	s.Checkpoints += o.Checkpoints
	s.RecoveryErrors += o.RecoveryErrors
	s.Resident += o.Resident
	s.Dropped += o.Dropped
}

// Fleet is the sharded household runtime. Build with New, call Start,
// route traffic with Deliver, and Stop to drain and checkpoint.
type Fleet struct {
	cfg    Config
	shards []*shard

	mu      sync.Mutex // serializes OnLog and the lifecycle flags
	started bool
	stopped bool
}

// msg is one shard-loop work item: an event, or a control closure (Do,
// flush, stop) run on the loop goroutine where tenants may be touched.
type msg struct {
	ev Event
	fn func(*shard)
}

// shard is one event loop and the tenants resident on it. All fields are
// owned by the loop goroutine after Start.
type shard struct {
	f       *Fleet
	idx     int
	in      chan msg
	done    chan struct{}
	quit    bool
	tenants map[string]*Tenant
	stats   Stats
}

// New validates the configuration and builds the shard pool.
func New(cfg Config) (*Fleet, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fleet: Config.Dir is required")
	}
	if cfg.NewSystem == nil {
		return nil, fmt.Errorf("fleet: Config.NewSystem is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: creating checkpoint dir: %w", err)
	}
	f := &Fleet{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		f.shards = append(f.shards, &shard{
			f:       f,
			idx:     i,
			in:      make(chan msg, 256),
			done:    make(chan struct{}),
			tenants: make(map[string]*Tenant),
		})
	}
	return f, nil
}

// Shards returns the shard count households are hashed across.
func (f *Fleet) Shards() int { return len(f.shards) }

// Start spawns the shard event loops.
func (f *Fleet) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return
	}
	f.started = true
	for _, s := range f.shards {
		go s.run()
	}
}

// Deliver routes one event to its household's shard, blocking while the
// shard's queue is full (backpressure). Events for the same household
// must come from one goroutine (or be externally ordered); their At
// values must be non-decreasing.
func (f *Fleet) Deliver(ev Event) error {
	if !ValidHousehold(ev.Household) {
		return fmt.Errorf("fleet: invalid household ID %q", ev.Household)
	}
	f.mu.Lock()
	ok := f.started && !f.stopped
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: not running")
	}
	f.shards[ShardOf(ev.Household, len(f.shards))].in <- msg{ev: ev}
	return nil
}

// Do runs fn on the household's shard loop, admitting the tenant if it
// is not resident, and waits for it to finish. The tenant must not be
// retained after fn returns.
func (f *Fleet) Do(household string, fn func(*Tenant) error) error {
	if !ValidHousehold(household) {
		return fmt.Errorf("fleet: invalid household ID %q", household)
	}
	f.mu.Lock()
	ok := f.started && !f.stopped
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: not running")
	}
	res := make(chan error, 1)
	f.shards[ShardOf(household, len(f.shards))].in <- msg{fn: func(s *shard) {
		t, err := s.admit(household)
		if err != nil {
			res <- err
			return
		}
		res <- fn(t)
	}}
	return <-res
}

// barrier runs fn on every shard loop and waits for all of them.
func (f *Fleet) barrier(fn func(*shard)) {
	var wg sync.WaitGroup
	wg.Add(len(f.shards))
	for _, s := range f.shards {
		s.in <- msg{fn: func(s *shard) {
			defer wg.Done()
			fn(s)
		}}
	}
	wg.Wait()
}

// advanceAll moves every resident tenant's virtual clock to at least
// `to`, firing due timers and the idle-eviction check. The serving layer
// calls this from its wall-clock pump; it does not wait for completion.
func (f *Fleet) advanceAll(to time.Duration) {
	for _, s := range f.shards {
		s.in <- msg{fn: func(s *shard) { s.advanceAll(to) }}
	}
}

// Flush checkpoints every dirty tenant on every shard (batch per-shard
// checkpointing) and waits for the writes to finish.
func (f *Fleet) Flush() {
	f.mu.Lock()
	ok := f.started && !f.stopped
	f.mu.Unlock()
	if !ok {
		return
	}
	f.barrier(func(s *shard) { s.flush() })
}

// Stats snapshots the aggregated counters (a barrier across shards).
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	running := f.started && !f.stopped
	f.mu.Unlock()
	var out Stats
	if !running {
		for _, s := range f.shards {
			st := s.stats
			st.Resident = len(s.tenants)
			out.add(st)
		}
		return out
	}
	var mu sync.Mutex
	f.barrier(func(s *shard) {
		st := s.stats
		st.Resident = len(s.tenants)
		mu.Lock()
		out.add(st)
		mu.Unlock()
	})
	return out
}

// Stop drains every shard, checkpoints all remaining tenants, and joins
// the loops. Deliver/Do/Flush fail or no-op afterwards.
func (f *Fleet) Stop() {
	f.mu.Lock()
	if !f.started || f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	f.mu.Unlock()
	for _, s := range f.shards {
		s.in <- msg{fn: func(s *shard) {
			s.flush()
			s.quit = true
		}}
	}
	for _, s := range f.shards {
		<-s.done
	}
}

func (f *Fleet) log(format string, args ...any) {
	if f.cfg.OnLog == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.OnLog(fmt.Sprintf(format, args...))
}

// run is the shard event loop: the single goroutine owning this shard's
// tenants.
func (s *shard) run() {
	defer close(s.done)
	for !s.quit {
		m := <-s.in
		if m.fn != nil {
			m.fn(s)
			continue
		}
		s.handle(m.ev)
	}
}

// handle processes one event on the loop goroutine.
func (s *shard) handle(ev Event) {
	t, err := s.admit(ev.Household)
	if err != nil {
		s.stats.Dropped++
		s.f.log("shard %d: admit %s: %v", s.idx, ev.Household, err)
		return
	}
	// The tenant clock never goes backwards: a late event is processed
	// at the tenant's current time (same policy as a real gateway, which
	// stamps arrival time).
	at := ev.At
	if now := t.Sched.Now(); at < now {
		at = now
	}
	t.Sched.RunUntil(at)
	switch ev.Kind {
	case EventUsage:
		u := ev.Usage
		u.At = at
		t.Hub.HandleUsage(u)
		t.lastEvent = at
		t.dirty = true
		s.stats.Events++
	case EventNodeState:
		t.Hub.HandleNodeState(ev.Tool, ev.Online)
		t.lastEvent = at
		t.dirty = true
		s.stats.NodeStates++
	case EventAdvance:
		// Clock only; the eviction check below does the rest.
	}
	s.maybeEvict(t)
}

// admit returns the resident tenant, spinning it up from its checkpoint
// file (or fresh) on first contact.
func (s *shard) admit(household string) (*Tenant, error) {
	if t, ok := s.tenants[household]; ok {
		return t, nil
	}
	cfg, err := s.f.cfg.NewSystem(household)
	if err != nil {
		return nil, err
	}
	if cfg.LEDs == nil && s.f.cfg.LEDs != nil {
		cfg.LEDs = s.f.cfg.LEDs(household)
	}
	t, recovered, err := newTenant(household, cfg, s.f.policyPath(household))
	if err != nil {
		return nil, err
	}
	s.tenants[household] = t
	s.stats.Admissions++
	switch recovered {
	case recoveredCheckpoint:
		s.stats.Recovered++
		s.f.log("shard %d: admitted %s from checkpoint (%d episodes)", s.idx, household, t.System.Planner().Episodes)
	case recoveredFresh:
		s.f.log("shard %d: admitted %s fresh", s.idx, household)
	case recoveredError:
		s.stats.RecoveryErrors++
		s.f.log("shard %d: admitted %s fresh (checkpoint unusable: %v)", s.idx, household, t.loadErr)
	}
	return t, nil
}

// maybeEvict checkpoints and releases a tenant idle past the deadline on
// its own virtual clock. Mid-session tenants are kept: a session in
// flight pins the tenant.
func (s *shard) maybeEvict(t *Tenant) {
	d := s.f.cfg.IdleEvict
	if d <= 0 || t.System.Active() {
		return
	}
	if t.Sched.Now()-t.lastEvent < d {
		return
	}
	if err := s.checkpoint(t); err != nil {
		s.f.log("shard %d: evict %s: %v", s.idx, t.ID, err)
		return // keep the tenant rather than lose its learning
	}
	delete(s.tenants, t.ID)
	s.stats.Evictions++
	s.f.log("shard %d: evicted %s (idle %v)", s.idx, t.ID, t.Sched.Now()-t.lastEvent)
}

// advanceAll pumps every resident tenant's clock to `to` and sweeps for
// idle evictions. Iteration order is sorted for deterministic logs.
func (s *shard) advanceAll(to time.Duration) {
	for _, id := range sortedHouseholds(s.tenants) {
		t := s.tenants[id]
		if to > t.Sched.Now() {
			t.Sched.RunUntil(to)
		}
		s.maybeEvict(t)
	}
}

// flush checkpoints every dirty tenant (batch per-shard checkpointing).
func (s *shard) flush() {
	for _, id := range sortedHouseholds(s.tenants) {
		if err := s.checkpoint(s.tenants[id]); err != nil {
			s.f.log("shard %d: checkpoint %s: %v", s.idx, id, err)
		}
	}
}

// checkpoint persists the tenant if it has unsaved events.
func (s *shard) checkpoint(t *Tenant) error {
	if !t.dirty {
		return nil
	}
	if err := t.save(s.f.policyPath(t.ID)); err != nil {
		return err
	}
	t.dirty = false
	s.stats.Checkpoints++
	return nil
}

// ValidHousehold reports whether id is usable as a household ID: 1 to
// wire.MaxHousehold bytes of letters, digits, '-', '_' or '.', not
// starting with a dot (IDs double as checkpoint file names).
func ValidHousehold(id string) bool {
	if len(id) == 0 || len(id) > wire.MaxHousehold || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}
