package fleet

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"coreda"
	"coreda/internal/adl"
	"coreda/internal/testutil"
)

// TestShardIngestAllocBudget locks the steady-state shard ingest path —
// Deliver, tenant lookup, virtual-clock advance, Hub dispatch,
// dirty-set tracking — to a small per-event allocation budget. The shard
// loop runs on its own goroutine, so this measures a global
// runtime.MemStats malloc delta across a burst of events rather than
// testing.AllocsPerRun.
func TestShardIngestAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc budgets are enforced by the no-race pass (scripts/check.sh)")
	}
	cfg := testConfig(t.TempDir())
	cfg.Shards = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	const households = 16
	ids := make([]string, households)
	for i := range ids {
		ids[i] = fmt.Sprintf("alloc-%03d", i)
	}
	tool := adl.TeaMaking().Steps[0].Tool
	deliver := func(from, n int) {
		for i := from; i < from+n; i++ {
			ev := Event{
				Household: ids[i%households],
				At:        time.Duration(i) * time.Millisecond,
				Kind:      EventUsage,
				Usage:     coreda.UsageEvent{Tool: tool, Kind: coreda.UsageStarted},
			}
			if err := f.Deliver(ev); err != nil {
				t.Fatal(err)
			}
		}
		f.Stats() // shard barrier: the loop has drained the burst
	}

	// Warm up: admissions, map growth and per-tenant buffers happen here.
	for _, id := range ids {
		if err := f.Deliver(Event{Household: id, Kind: EventAdvance}); err != nil {
			t.Fatal(err)
		}
	}
	f.Stats()
	deliver(0, 2000)

	const events = 4000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	deliver(2000, events)
	runtime.ReadMemStats(&after)

	perEvent := float64(after.Mallocs-before.Mallocs) / events
	// The loop itself is allocation-free; the budget absorbs the handful
	// of mallocs the runtime and Hub bookkeeping spend across the whole
	// burst (timer wheel, map rehash straggler, Stats barrier).
	const budget = 0.25
	t.Logf("shard ingest: %.3f mallocs/event over %d events", perEvent, events)
	if perEvent > budget {
		t.Errorf("shard ingest allocates %.3f mallocs/event over %d events, budget %.2f", perEvent, events, budget)
	}
}
