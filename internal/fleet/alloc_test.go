package fleet

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"coreda"
	"coreda/internal/adl"
	"coreda/internal/testutil"
)

// TestShardIngestAllocBudget locks the steady-state shard ingest path —
// Deliver, tenant lookup, virtual-clock advance, Hub dispatch,
// dirty-set tracking — to a small per-event allocation budget. The shard
// loop runs on its own goroutine, so this measures a global
// runtime.MemStats malloc delta across a burst of events rather than
// testing.AllocsPerRun.
func TestShardIngestAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc budgets are enforced by the no-race pass (scripts/check.sh)")
	}
	cfg := testConfig(t.TempDir())
	cfg.Shards = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	const households = 16
	ids := make([]string, households)
	for i := range ids {
		ids[i] = fmt.Sprintf("alloc-%03d", i)
	}
	tool := adl.TeaMaking().Steps[0].Tool
	deliver := func(from, n int) {
		for i := from; i < from+n; i++ {
			ev := Event{
				Household: ids[i%households],
				At:        time.Duration(i) * time.Millisecond,
				Kind:      EventUsage,
				Usage:     coreda.UsageEvent{Tool: tool, Kind: coreda.UsageStarted},
			}
			if err := f.Deliver(ev); err != nil {
				t.Fatal(err)
			}
		}
		f.Stats() // shard barrier: the loop has drained the burst
	}

	// Warm up: admissions, map growth and per-tenant buffers happen here.
	for _, id := range ids {
		if err := f.Deliver(Event{Household: id, Kind: EventAdvance}); err != nil {
			t.Fatal(err)
		}
	}
	f.Stats()
	deliver(0, 2000)

	const events = 4000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	deliver(2000, events)
	runtime.ReadMemStats(&after)

	perEvent := float64(after.Mallocs-before.Mallocs) / events
	// The loop itself is allocation-free; the budget absorbs the handful
	// of mallocs the runtime and Hub bookkeeping spend across the whole
	// burst (timer wheel, map rehash straggler, Stats barrier).
	const budget = 0.25
	t.Logf("shard ingest: %.3f mallocs/event over %d events", perEvent, events)
	if perEvent > budget {
		t.Errorf("shard ingest allocates %.3f mallocs/event over %d events, budget %.2f", perEvent, events, budget)
	}
}

// TestAdvanceTickAllocBudget locks the clock-pump path over a shard of
// idle tenants to (almost) zero allocations per tick: the tick is a
// plain channel message (no closure capturing the deadline), the
// dispatch is a due-heap peek that finds nothing due, and no per-tick
// scratch — the old sorted-households slice — is built. The budget
// absorbs only the single Stats barrier closing the measured window.
func TestAdvanceTickAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc budgets are enforced by the no-race pass (scripts/check.sh)")
	}
	cfg := testConfig(t.TempDir())
	cfg.Shards = 1
	cfg.Control = ControlInline
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	// A population of resident households with no timers and no eviction
	// deadline (IdleEvict is off): nothing is ever due, so every tick
	// must cost O(1) — and allocate nothing.
	const resident = 1024
	for i := 0; i < resident; i++ {
		if err := f.Deliver(Event{Household: fmt.Sprintf("idle-%04d", i), Kind: EventAdvance}); err != nil {
			t.Fatal(err)
		}
	}
	f.Stats()
	for i := 0; i < 100; i++ { // warm the pump
		f.advanceAll(time.Duration(i) * time.Millisecond)
	}
	f.Stats()

	const ticks = 2000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < ticks; i++ {
		f.advanceAll(time.Duration(100+i) * time.Millisecond)
	}
	f.Stats() // barrier: every tick has been dispatched
	runtime.ReadMemStats(&after)

	perTick := float64(after.Mallocs-before.Mallocs) / ticks
	const budget = 0.05
	t.Logf("advance tick: %.4f mallocs/tick over %d ticks, %d idle tenants", perTick, ticks, resident)
	if perTick > budget {
		t.Errorf("advance tick allocates %.4f mallocs/tick over %d ticks, budget %.2f", perTick, ticks, budget)
	}
}
