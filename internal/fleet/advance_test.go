package fleet

import (
	"fmt"
	"testing"
	"time"
)

// runAdvanceWorkload drives a fleet whose clock is pumped exclusively
// through Fleet.advanceAll ticks — the serving-layer pattern — over the
// soak's household streams, and returns the checkpoint digest. Sessions
// are delivered in rounds (session k of every household, round-robin)
// with a shard-wide tick after each round, and a final tick past the
// idle deadline so every tenant is evicted through the advance path
// rather than through Stop.
func runAdvanceWorkload(t *testing.T, shards int, mode AdvanceMode) (string, Stats) {
	t.Helper()
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = shards
	cfg.Advance = mode
	cfg.IdleEvict = 10 * time.Minute

	const households = 12
	scfg := SoakConfig{Seed: 5, Sessions: 4, IdleEvict: cfg.IdleEvict}
	streams := make([][][]Event, households)
	rounds := 0
	for i := range streams {
		streams[i] = SoakSessions(scfg, SoakHousehold(i))
		if len(streams[i]) > rounds {
			rounds = len(streams[i])
		}
	}

	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	var tmax time.Duration
	for k := 0; k < rounds; k++ {
		for _, sessions := range streams {
			if k >= len(sessions) {
				continue
			}
			for _, ev := range sessions[k] {
				if err := f.Deliver(ev); err != nil {
					t.Fatal(err)
				}
				if ev.At > tmax {
					tmax = ev.At
				}
			}
		}
		// Tick to the high-water mark of everything delivered so far:
		// non-decreasing, exactly like a serving pump on a monotone clock.
		f.advanceAll(tmax)
		f.Stats() // barrier: the ticks have been dispatched
	}
	// Final ticks march every tenant past the idle deadline, so eviction
	// (and its queued writeback) happens through the advance path. Two
	// half-steps make the second tick a no-op under AdvanceIndexed — the
	// due index must be empty once everyone is evicted.
	tmax += cfg.IdleEvict/2 + time.Second
	f.advanceAll(tmax)
	tmax += cfg.IdleEvict/2 + time.Second
	f.advanceAll(tmax)
	st := f.Stats()
	f.Stop()

	digest, err := DigestDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return digest, st
}

// TestAdvanceParity is the indexed-vs-sweep determinism gate: the
// due-time index must produce byte-identical checkpoint digests to the
// exhaustive per-tick sweep, at 1, 4 and 8 shards. It also checks the
// workload actually exercised the advance path: every household was
// evicted by the final ticks, not by Stop's flush.
func TestAdvanceParity(t *testing.T) {
	var want string
	for _, shards := range []int{1, 4, 8} {
		for _, mode := range []AdvanceMode{AdvanceIndexed, AdvanceSweep} {
			name := fmt.Sprintf("shards=%d/mode=%d", shards, mode)
			digest, st := runAdvanceWorkload(t, shards, mode)
			if st.Evictions < 12 {
				t.Errorf("%s: %d evictions, want >= 12 (ticks did not drive eviction)", name, st.Evictions)
			}
			if st.Resident != 0 {
				t.Errorf("%s: %d tenants resident after final tick, want 0", name, st.Resident)
			}
			if want == "" {
				want = digest
				continue
			}
			if digest != want {
				t.Errorf("%s: digest %s, want %s (diverges from shards=1/indexed)", name, digest, want)
			}
		}
	}
}

// TestLateEventAfterTickParity pins the tick-floor semantics: an event
// stamped earlier than a tick that preceded it on the shard queue is
// processed at the tick time under both advance modes. Without the lazy
// floor the indexed path — which never touches a no-due-work tenant —
// would process the event at its stale stamp, date lastEvent a tick
// earlier than the sweep does, and evict the tenant on a tick where the
// sweep keeps it resident.
func TestLateEventAfterTickParity(t *testing.T) {
	for _, mode := range []AdvanceMode{AdvanceIndexed, AdvanceSweep} {
		dir := t.TempDir()
		cfg := testConfig(dir)
		cfg.Shards = 1
		cfg.Advance = mode
		cfg.IdleEvict = 10 * time.Minute
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.Start()
		// A full session ends with the tenant inactive but holding one
		// trailing timer a little past the session end; a tick landing
		// before it finds the tenant with no due work, so the indexed
		// path skips it while the sweep raises its clock.
		now := deliverSession(t, f, "late", 0)
		f.advanceAll(now + 10*time.Second)
		// A late-stamped liveness event (stamped before the tick, legal:
		// per-household times are still non-decreasing). The sweep
		// processes — and dates lastEvent — at the tick, now+10s; the
		// floor must make the untouched indexed tenant do the same, not
		// use the stale now+5s stamp.
		if err := f.Deliver(Event{Household: "late", At: now + 5*time.Second, Kind: EventNodeState, Online: true}); err != nil {
			t.Fatal(err)
		}
		// IdleEvict+1s past the stale stamp but 5s short of it from the
		// floored one: the tenant must survive this tick in both modes.
		f.advanceAll(now + 5*time.Second + cfg.IdleEvict + time.Second)
		st := f.Stats()
		if st.Resident != 1 || st.Evictions != 0 {
			t.Errorf("mode %d: resident=%d evictions=%d after tick, want 1/0 (late event was not floored to the tick time)", mode, st.Resident, st.Evictions)
		}
		f.Stop()
	}
}

// TestDueHeap unit-tests the intrusive due-time heap: push/pop ordering
// by (dueAt, ID), positional removal, reposition via refresh-style key
// changes, and the dueIdx bookkeeping invariant after every operation.
func TestDueHeap(t *testing.T) {
	s := &shard{}
	mk := func(id string, at time.Duration) *Tenant {
		return &Tenant{ID: id, dueAt: at, dueIdx: -1}
	}
	validate := func(stage string) {
		t.Helper()
		for i, tn := range s.due {
			if int(tn.dueIdx) != i {
				t.Fatalf("%s: due[%d].dueIdx = %d", stage, i, tn.dueIdx)
			}
			if i > 0 {
				parent := s.due[(i-1)/2]
				if dueLess(tn, parent) {
					t.Fatalf("%s: heap violated at %d: %s/%v under %s/%v", stage, i, tn.ID, tn.dueAt, parent.ID, parent.dueAt)
				}
			}
		}
	}

	// Ties on dueAt break by ID.
	a := mk("a", 5*time.Second)
	b := mk("b", 5*time.Second)
	c := mk("c", time.Second)
	d := mk("d", 9*time.Second)
	e := mk("e", 3*time.Second)
	for _, tn := range []*Tenant{d, b, a, e, c} {
		s.duePush(tn)
		validate("push")
	}
	if got := s.duePop(); got != c {
		t.Fatalf("pop 1 = %s", got.ID)
	}
	validate("pop")

	// Remove from the middle; the displaced element must be re-sifted.
	s.dueRemove(b)
	validate("remove")
	if b.dueIdx != -1 {
		t.Fatalf("removed tenant dueIdx = %d", b.dueIdx)
	}
	s.dueRemove(b) // double remove is a no-op
	validate("double remove")

	// Reposition: move the max to the front via a key change.
	d.dueAt = time.Millisecond
	s.dueFix(int(d.dueIdx))
	validate("fix")
	want := []string{"d", "e", "a"}
	for _, id := range want {
		got := s.duePop()
		validate("drain")
		if got.ID != id {
			t.Fatalf("drain order: got %s, want %s", got.ID, id)
		}
	}
	if len(s.due) != 0 {
		t.Fatalf("%d tenants left in heap", len(s.due))
	}
}
