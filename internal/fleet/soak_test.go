package fleet

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"coreda/internal/store"
)

// TestSoakShardParity is the fleet's signature determinism guarantee:
// the same households soaked at different shard counts must leave
// byte-identical policy files behind — sharding is a throughput decision,
// never a behavioural one.
func TestSoakShardParity(t *testing.T) {
	cfg := SoakConfig{Seed: 42, Households: 16, Sessions: 4}
	var (
		dirs    []string
		results []SoakResult
	)
	for _, shards := range []int{1, 2, 4} {
		dir := t.TempDir()
		cfg.Shards, cfg.Dir = shards, dir
		res, err := Soak(cfg)
		if err != nil {
			t.Fatalf("soak at %d shards: %v", shards, err)
		}
		dirs = append(dirs, dir)
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Digest != results[0].Digest {
			t.Errorf("digest at %d shards = %s, want %s (1 shard)",
				results[i].Shards, results[i].Digest, results[0].Digest)
		}
		if results[i].Stats != results[0].Stats {
			t.Errorf("stats at %d shards = %+v, want %+v", results[i].Shards, results[i].Stats, results[0].Stats)
		}
	}
	// Byte-level check, not just the digest: every per-household file
	// must match exactly.
	for h := 0; h < cfg.Households; h++ {
		name := SoakHousehold(h) + ".ckpt"
		want, err := os.ReadFile(filepath.Join(dirs[0], name))
		if err != nil {
			t.Fatalf("household %s never checkpointed: %v", name, err)
		}
		for i := 1; i < len(dirs); i++ {
			got, err := os.ReadFile(filepath.Join(dirs[i], name))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("%s differs between 1 and %d shards", name, results[i].Shards)
			}
		}
	}
}

// TestSoakFormatParity is the storage-format analogue of shard parity:
// the same soak run with binary and JSON checkpoints must produce the
// same digest (it decodes and canonicalizes blobs) and the same stats —
// the on-disk encoding is an operational choice, never a behavioural
// one.
func TestSoakFormatParity(t *testing.T) {
	cfg := SoakConfig{Seed: 42, Households: 12, Sessions: 4, Shards: 2}
	run := func(format store.Format) (SoakResult, string) {
		dir := t.TempDir()
		cfg.Dir, cfg.Format = dir, format
		res, err := Soak(cfg)
		if err != nil {
			t.Fatalf("soak with %v checkpoints: %v", format, err)
		}
		return res, dir
	}
	bin, _ := run(store.FormatBinary)
	js, jsDir := run(store.FormatJSON)
	if bin.Digest != js.Digest {
		t.Errorf("digest binary %s != json %s", bin.Digest, js.Digest)
	}
	if bin.Stats != js.Stats {
		t.Errorf("stats binary %+v != json %+v", bin.Stats, js.Stats)
	}
	// The JSON run must genuinely have written JSON bytes — parity by
	// canonicalization, not because the flag was ignored.
	data, err := os.ReadFile(filepath.Join(jsDir, SoakHousehold(0)+".ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := store.SniffFormat(data); !ok || f != store.FormatJSON {
		t.Errorf("json-format soak wrote %v blobs", f)
	}
}

// TestSoakExercisesEvictionCycle pins that the soak's mid-life idle gap
// really drives every household through evict → checkpoint → re-admit,
// so the parity gate covers the recovery path too.
func TestSoakExercisesEvictionCycle(t *testing.T) {
	res, err := Soak(SoakConfig{Seed: 1, Households: 8, Sessions: 4, Shards: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evictions != 8 {
		t.Errorf("evictions = %d, want one per household", res.Stats.Evictions)
	}
	if res.Stats.Admissions != 16 || res.Stats.Recovered != 8 {
		t.Errorf("admissions/recovered = %d/%d, want 16/8", res.Stats.Admissions, res.Stats.Recovered)
	}
	if res.Stats.RecoveryErrors != 0 || res.Stats.Dropped != 0 {
		t.Errorf("recovery errors/dropped = %+v", res.Stats)
	}
	if res.Events != res.Stats.Events || res.Events != 8*4*8 {
		t.Errorf("events = %d (stats %d), want %d", res.Events, res.Stats.Events, 8*4*8)
	}
}

// TestSoakIsRepeatable pins that two identical runs (including worker
// count changes in the stream generator) give the same digest, and that
// the seed actually matters.
func TestSoakIsRepeatable(t *testing.T) {
	base := SoakConfig{Seed: 9, Households: 6, Sessions: 3, Shards: 2}
	run := func(cfg SoakConfig) string {
		cfg.Dir = t.TempDir()
		res, err := Soak(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Digest
	}
	a := run(base)
	serial := base
	serial.Workers = 1
	if b := run(serial); b != a {
		t.Errorf("workers=1 digest %s != parallel digest %s", b, a)
	}
	reseeded := base
	reseeded.Seed = 10
	if c := run(reseeded); c == a {
		t.Error("different seed produced the same digest")
	}
}

func TestShardOf(t *testing.T) {
	if ShardOf("anything", 1) != 0 || ShardOf("x", 0) != 0 {
		t.Error("degenerate shard counts must map to 0")
	}
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		s := ShardOf(SoakHousehold(i), 4)
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 100 {
			t.Errorf("shard %d got %d/1000 households: hash is badly skewed", s, c)
		}
	}
	if ShardOf("tanaka-42", 4) != ShardOf("tanaka-42", 4) {
		t.Error("ShardOf is not stable")
	}
}

func TestSeedFor(t *testing.T) {
	a, b := SeedFor(7, "h1"), SeedFor(7, "h2")
	if a == b {
		t.Error("distinct households share a seed")
	}
	if SeedFor(7, "h1") != a {
		t.Error("SeedFor is not stable")
	}
	if SeedFor(8, "h1") == a {
		t.Error("base seed has no effect")
	}
}

func TestValidHousehold(t *testing.T) {
	for _, ok := range []string{"a", "h00042", "tanaka-42", "A_b.c"} {
		if !ValidHousehold(ok) {
			t.Errorf("%q rejected", ok)
		}
	}
	long := make([]byte, 59)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", ".dot", "a/b", "a\\b", "a b", "héh", string(long)} {
		if ValidHousehold(bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestSoakSessionsFlattenToStream pins the contract the cluster soak
// depends on: a household's per-session slices, concatenated, are
// exactly the stream the single-process soak delivers.
func TestSoakSessionsFlattenToStream(t *testing.T) {
	cfg := SoakConfig{Seed: 11, Sessions: 5}
	for _, hh := range []string{SoakHousehold(0), SoakHousehold(3)} {
		var flat []Event
		sessions := SoakSessions(cfg, hh)
		if len(sessions) != 5 {
			t.Fatalf("%s: %d sessions, want 5", hh, len(sessions))
		}
		for _, s := range sessions {
			flat = append(flat, s...)
		}
		want := soakStream(cfg, hh)
		if !reflect.DeepEqual(flat, want) {
			t.Errorf("%s: concatenated sessions differ from soak stream", hh)
		}
	}
	// The mid-life eviction gap lands at the front of session Sessions/2.
	mid := SoakSessions(cfg, SoakHousehold(0))[2]
	if mid[0].Kind != EventAdvance {
		t.Errorf("session 2 starts with %v, want the idle-gap advance", mid[0].Kind)
	}
}
