package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"time"

	"coreda"
	"coreda/internal/adl"
	"coreda/internal/chaos"
	"coreda/internal/notify"
	"coreda/internal/parrun"
	"coreda/internal/queue"
	"coreda/internal/sim"
	"coreda/internal/store"
)

// SoakConfig parameterizes a fleet soak: N simulated households living
// through tea-making sessions, with a mid-life idle gap that forces every
// tenant through the evict → checkpoint → re-admit cycle.
type SoakConfig struct {
	// Seed drives every household's behaviour and learning. The same
	// seed reproduces the same soak — same digest — at any shard count.
	Seed int64
	// Households is the number of simulated homes. Zero means 64.
	Households int
	// Sessions is how many tea-making sessions each household performs.
	// Zero means 6.
	Sessions int
	// Shards is the fleet's shard count. Zero means GOMAXPROCS.
	Shards int
	// Dir is the checkpoint directory. It should start empty: stale
	// policy files would both seed tenants and pollute the digest.
	Dir string
	// Format selects the checkpoint encoding written by the fleet. The
	// digest decodes and canonicalizes blobs, so it is identical across
	// formats.
	Format store.Format
	// Workers bounds the parrun pool generating household streams.
	// Zero means GOMAXPROCS.
	Workers int
	// IdleEvict is the fleet's idle-eviction deadline. Zero means 10
	// minutes (the soak's mid-life gap jumps just past it).
	IdleEvict time.Duration
	// OnLog receives fleet log lines (may be nil).
	OnLog func(string)
	// Control selects the fleet's control-plane path (zero =
	// queue-backed). The digest must not depend on it — that is the
	// queue-parity gate in check.sh.
	Control ControlMode
	// Bus, if non-nil, receives the fleet's control-plane events.
	Bus *notify.Bus
	// JobFail is the chaos job-failure probability: each control-queue
	// job fails injected attempts with this probability, drawn on the
	// per-shard "chaos/jobs/<shard>" stream, exercising retry/backoff
	// without changing any outcome (or the digest). Zero injects
	// nothing; ignored under ControlInline.
	JobFail float64
}

// SoakResult is what a soak run produced. Every field is deterministic
// in (Seed, Households, Sessions) — including Digest, which must not
// change with Shards or Workers.
type SoakResult struct {
	Households int
	Shards     int
	// Events is the number of usage events delivered.
	Events int
	// Stats is the fleet's counter snapshot after Stop.
	Stats Stats
	// Digest is a SHA-256 over the sorted checkpoint files: the fleet's
	// shard-count parity gate compares this across shard counts.
	Digest string
}

// Soak drives a fleet of simulated households and returns the
// deterministic result. Each household's event stream is generated from
// its own seeded random stream (in parallel via parrun), then delivered
// round-robin so shards see heavily interleaved traffic; half-way
// through, an idle gap evicts every tenant, so the digest also covers
// checkpoint-on-evict and re-admission from disk.
func Soak(cfg SoakConfig) (SoakResult, error) {
	if cfg.Households <= 0 {
		cfg.Households = 64
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 6
	}
	if cfg.IdleEvict <= 0 {
		cfg.IdleEvict = 10 * time.Minute
	}

	streams, err := parrun.Map(cfg.Households, cfg.Workers, func(i int) ([]Event, error) {
		return soakStream(cfg, SoakHousehold(i)), nil
	})
	if err != nil {
		return SoakResult{}, err
	}

	fcfg := Config{
		Shards:    cfg.Shards,
		Dir:       cfg.Dir,
		Format:    cfg.Format,
		IdleEvict: cfg.IdleEvict,
		OnLog:     cfg.OnLog,
		Control:   cfg.Control,
		Bus:       cfg.Bus,
		NewSystem: func(household string) (coreda.SystemConfig, error) {
			return coreda.SystemConfig{
				Activity: adl.TeaMaking(),
				UserName: household,
				Seed:     SeedFor(cfg.Seed, household),
			}, nil
		},
	}
	if cfg.JobFail > 0 {
		plan := &chaos.Plan{JobFail: cfg.JobFail}
		if err := plan.Validate(); err != nil {
			return SoakResult{}, err
		}
		fcfg.JobInject = func(shard int) queue.InjectFunc {
			return plan.JobInjector(sim.RNG(cfg.Seed, "chaos/jobs/"+strconv.Itoa(shard)))
		}
	}
	f, err := New(fcfg)
	if err != nil {
		return SoakResult{}, err
	}
	f.Start()

	// Round-robin across households: consecutive events on a shard
	// almost always belong to different tenants, the worst case for any
	// accidental cross-tenant coupling.
	events, longest := 0, 0
	for _, s := range streams {
		if len(s) > longest {
			longest = len(s)
		}
	}
	for k := 0; k < longest; k++ {
		for _, s := range streams {
			if k >= len(s) {
				continue
			}
			if err := f.Deliver(s[k]); err != nil {
				f.Stop()
				return SoakResult{}, err
			}
			if s[k].Kind == EventUsage {
				events++
			}
		}
	}
	f.Stop()

	digest, err := DigestDir(cfg.Dir)
	if err != nil {
		return SoakResult{}, err
	}
	return SoakResult{
		Households: cfg.Households,
		Shards:     f.Shards(),
		Events:     events,
		Stats:      f.Stats(),
		Digest:     digest,
	}, nil
}

// SoakHousehold names household i of a soak — exported so the cluster
// soak driver addresses the same simulated homes.
func SoakHousehold(i int) string { return fmt.Sprintf("h%05d", i) }

// SoakSessions generates one household's life as per-session event
// slices: cfg.Sessions tea-making sessions with jittered timing and
// occasional step-order variation, plus a mid-life idle gap long enough
// to trigger eviction (attached to the front of the session after the
// gap). Concatenated, the slices are exactly the stream Soak delivers —
// which is what makes the cluster soak comparable to the single-process
// one: the cluster driver delivers session k of every household as round
// k, and since a tenant's policy depends only on its own event sequence,
// the per-household checkpoint bytes come out identical.
func SoakSessions(cfg SoakConfig, household string) [][]Event {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 6
	}
	if cfg.IdleEvict <= 0 {
		cfg.IdleEvict = 10 * time.Minute
	}
	rng := sim.RNG(cfg.Seed, "fleet/soak/"+household)
	activity := adl.TeaMaking()
	var (
		sessions [][]Event
		now      time.Duration
	)
	for session := 0; session < cfg.Sessions; session++ {
		var out []Event
		if session == cfg.Sessions/2 && session > 0 {
			// Mid-life: fall idle past the eviction deadline. The advance
			// evicts the tenant; the next session re-admits it from its
			// checkpoint file.
			now += cfg.IdleEvict + time.Second
			out = append(out, Event{Household: household, At: now, Kind: EventAdvance})
		}
		order := []int{0, 1, 2, 3}
		if rng.Intn(3) == 0 {
			j := rng.Intn(len(order) - 1)
			order[j], order[j+1] = order[j+1], order[j]
		}
		for _, stepIdx := range order {
			tool := activity.Steps[stepIdx].Tool
			now += time.Duration(3+rng.Intn(5)) * time.Second
			out = append(out, Event{
				Household: household,
				At:        now,
				Kind:      EventUsage,
				Usage:     coreda.UsageEvent{Tool: tool, Kind: coreda.UsageStarted},
			})
			dur := time.Duration(1+rng.Intn(2)) * time.Second
			now += dur
			out = append(out, Event{
				Household: household,
				At:        now,
				Kind:      EventUsage,
				Usage:     coreda.UsageEvent{Tool: tool, Kind: coreda.UsageEnded, Duration: dur},
			})
		}
		now += 20 * time.Second // between sessions, well under the idle deadline
		sessions = append(sessions, out)
	}
	return sessions
}

// soakStream is one household's full event stream: its sessions
// concatenated.
func soakStream(cfg SoakConfig, household string) []Event {
	var out []Event
	for _, s := range SoakSessions(cfg, household) {
		out = append(out, s...)
	}
	return out
}

// Digest hashes a backend's checkpoints (sorted by name) into a hex
// SHA-256. Each blob is decoded and hashed in its canonical binary
// re-encoding, so the digest is a function of what the tenants learned,
// not of how the bytes happen to be stored: two fleets that learned the
// same policies produce the same digest at any shard count AND in any
// on-disk format (JSON float64s round-trip bit-exactly). This is the
// comparator behind the shard-count and format parity gates.
func Digest(b store.Backend) (string, error) {
	var names []string
	if err := b.Enumerate(func(name string) { names = append(names, name) }); err != nil {
		return "", err
	}
	return DigestOver(names, func(name string, c *store.Checkpoint) error {
		return store.LoadCheckpoint(b, name, c)
	})
}

// DigestOver computes the canonical digest over an explicit household
// set, loading each checkpoint through load — the primitive under
// Digest, exported so a cluster driver can combine households that live
// in different peers' backends into the one comparable digest (each name
// loaded from its owning peer). Names are deduplicated and sorted; the
// result is the same formula Digest uses.
func DigestOver(names []string, load func(name string, c *store.Checkpoint) error) (string, error) {
	names = append([]string(nil), names...)
	sort.Strings(names)
	uniq := names[:0]
	for i, name := range names {
		if i == 0 || name != names[i-1] {
			uniq = append(uniq, name)
		}
	}
	names = uniq
	// Read and canonicalize the blobs in parallel: the digest is
	// combined below in sorted name order regardless, so the concurrency
	// only overlaps per-blob read latency and decode work and cannot
	// change the result.
	const readers = 8
	sums, err := parrun.Map(len(names), readers, func(i int) ([sha256.Size]byte, error) {
		var c store.Checkpoint
		if err := load(names[i], &c); err != nil {
			return [sha256.Size]byte{}, fmt.Errorf("digest %s: %w", names[i], err)
		}
		canon, err := store.AppendCheckpoint(nil, &c)
		if err != nil {
			return [sha256.Size]byte{}, fmt.Errorf("digest %s: %w", names[i], err)
		}
		return sha256.Sum256(canon), nil
	})
	if err != nil {
		return "", err
	}
	bySum := make(map[string][sha256.Size]byte, len(names))
	for i, name := range names {
		bySum[name] = sums[i]
	}
	return CombineDigest(bySum), nil
}

// CheckpointSum is the canonical hash of one household's checkpoint in
// a backend: the SHA-256 of the blob's canonical binary re-encoding —
// the per-household term of the Digest formula. A cluster soak worker
// computes these locally so the driver can combine households living in
// different processes into one comparable digest.
func CheckpointSum(b store.Backend, name string) ([sha256.Size]byte, error) {
	var c store.Checkpoint
	if err := store.LoadCheckpoint(b, name, &c); err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("digest %s: %w", name, err)
	}
	canon, err := store.AppendCheckpoint(nil, &c)
	if err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("digest %s: %w", name, err)
	}
	return sha256.Sum256(canon), nil
}

// CombineDigest folds per-household canonical sums into the Digest
// formula: sorted by name, each contributing "name\x00" + sum. It is
// the combine half of DigestOver, exported so digests assembled from
// per-peer CheckpointSum pieces are byte-comparable with single-process
// Digest output.
func CombineDigest(sums map[string][sha256.Size]byte) string {
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		s := sums[name]
		fmt.Fprintf(h, "%s\x00", name)
		h.Write(s[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DigestDir is Digest over the local-dir backend rooted at dir.
func DigestDir(dir string) (string, error) {
	b, err := store.NewDirBackend(dir)
	if err != nil {
		return "", err
	}
	return Digest(b)
}
