package fleet

import (
	"encoding/binary"
	"hash/fnv"
)

// ShardOf maps a household ID onto one of n shards by FNV-1a hash. The
// mapping depends only on the ID and the shard count, so routing is
// stable across restarts and identical in every process of a cluster.
func ShardOf(household string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(household))
	return int(h.Sum32() % uint32(n))
}

// SeedFor derives a per-household planner seed from a base seed, so each
// tenant explores on its own independent random stream while the whole
// fleet stays reproducible from the one base seed.
func SeedFor(seed int64, household string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(household))
	return int64(h.Sum64())
}
