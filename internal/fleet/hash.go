package fleet

import (
	"encoding/binary"
	"hash/fnv"
)

// ShardOf maps a household ID onto one of n shards by FNV-1a hash. The
// mapping depends only on the ID and the shard count, so routing is
// stable across restarts and identical in every process of a cluster.
func ShardOf(household string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(household))
	return int(h.Sum32() % uint32(n))
}

// Slots is the size of the household ring a cluster divides between its
// peer processes: every household hashes onto one of Slots ring slots
// (SlotOf), and internal/cluster assigns each slot an owner and replica
// set by rendezvous hashing. 64 slots keeps ownership tables and
// RangeClaim traffic tiny while still splitting evenly across the
// single-digit peer counts a cluster runs.
const Slots = 64

// SlotOf maps a household ID onto its ring slot. Like ShardOf the
// mapping depends only on the ID, so every peer of a cluster computes
// the same slot — and therefore the same owner — for a household.
func SlotOf(household string) int {
	h := fnv.New32a()
	h.Write([]byte(household))
	return int(h.Sum32() % Slots)
}

// SeedFor derives a per-household planner seed from a base seed, so each
// tenant explores on its own independent random stream while the whole
// fleet stays reproducible from the one base seed.
func SeedFor(seed int64, household string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(household))
	return int64(h.Sum64())
}
