package fleet

import (
	"errors"
	"fmt"
	"time"

	"coreda"
	"coreda/internal/adl"
	"coreda/internal/rl"
	"coreda/internal/sim"
	"coreda/internal/store"
)

// Tenant is one resident household: a full CoReDA stack on its own
// virtual clock. It is owned by its shard's loop goroutine — fleet users
// only touch a Tenant inside Fleet.Do.
type Tenant struct {
	// ID is the household ID; it doubles as the tenant's checkpoint
	// blob name in the fleet's storage backend.
	ID string
	// Sched is the tenant's private virtual clock. All of the tenant's
	// timers (idle watchdogs, reminder escalation) live here, which is
	// what makes its behaviour independent of shard count and load.
	Sched *sim.Scheduler
	// Hub routes the household's gateway traffic by tool.
	Hub *coreda.Hub
	// System is the stack for the household's instrumented activity.
	System *coreda.System

	activity *coreda.Activity
	// enc is the routine set in its on-disk form, encoded once at
	// admission: routines never change after admission, so incremental
	// checkpoints reuse this instead of re-encoding per save.
	enc store.EncodedRoutines
	// tables/states are the one-element scratch slices handed to the
	// saver, so a checkpoint does not allocate its argument slices.
	tables [1]*rl.QTable
	states [1]store.TrainState
	// lastEvent is the virtual time of the last delivered event; the
	// idle-eviction clock measures from here.
	lastEvent time.Duration
	// dueAt/dueIdx are the tenant's slot in its shard's due-time index
	// (shard.due): dueAt is the earliest virtual time at which the tenant
	// has work — its next scheduler timer or its idle-eviction deadline —
	// and dueIdx is its position in the intrusive min-heap, -1 when the
	// tenant has no due work and is absent from the index. Owned by the
	// shard loop, like everything else here.
	dueAt  time.Duration
	dueIdx int32
	// tickSeq is the shard's tick count at this tenant's admission: ticks
	// up to it predate the tenant and are excluded from the clock floor
	// handle applies (see shard.tickSeq/tickAt).
	tickSeq uint64
	// loadErr records why a checkpoint could not be restored (the tenant
	// then started fresh).
	loadErr error
}

// recovery says how a tenant came up.
type recovery int

const (
	// recoveredFresh: no checkpoint in the backend, blank policy.
	recoveredFresh recovery = iota
	// recoveredCheckpoint: learned policy restored from the blob.
	recoveredCheckpoint
	// recoveredError: a checkpoint existed but was unusable (see
	// Tenant.loadErr); the tenant started fresh.
	recoveredError
)

// newTenant builds the household stack and restores its checkpoint from
// the backend if one exists. tryLoad false skips the restore outright —
// the caller (the shard's known-checkpoint set) already knows no blob
// exists, so a first-contact admission costs zero storage probes.
func newTenant(id string, cfg coreda.SystemConfig, b store.Backend, tryLoad bool) (*Tenant, recovery, error) {
	if cfg.Activity == nil {
		return nil, 0, fmt.Errorf("fleet: NewSystem config for %q has no activity", id)
	}
	sched := sim.New()
	hub := coreda.NewHub(sched)
	sys, err := hub.Add(cfg)
	if err != nil {
		return nil, 0, err
	}
	t := &Tenant{
		ID:       id,
		Sched:    sched,
		Hub:      hub,
		System:   sys,
		activity: cfg.Activity,
		enc:      store.EncodeRoutines([]adl.Routine{cfg.Activity.CanonicalRoutine()}),
		dueIdx:   -1,
	}
	if !tryLoad {
		return t, recoveredFresh, nil
	}
	switch err := t.load(b); {
	case err == nil:
		return t, recoveredCheckpoint, nil
	case errors.Is(err, store.ErrNoCheckpoint):
		// No generation of the blob exists: a genuine fresh start, not a
		// recovery failure. Folding this into the load saves the
		// stat-per-admission probe the old existence check cost.
		return t, recoveredFresh, nil
	default:
		t.loadErr = err
		return t, recoveredError, nil
	}
}

// load restores the learned policy and training progress from a
// checkpoint written by save, decoding straight into the planner's own
// Q-table — no intermediate table is materialized on the admission
// path.
func (t *Tenant) load(b store.Backend) error {
	var c store.Checkpoint
	if err := store.LoadCheckpoint(b, t.ID, &c); err != nil {
		return err
	}
	if c.Activity != t.activity.Name {
		return fmt.Errorf("fleet: checkpoint %s is for activity %q, tenant runs %q", t.ID, c.Activity, t.activity.Name)
	}
	if len(c.Policies) != 1 {
		return fmt.Errorf("fleet: checkpoint %s has %d policies, want 1", t.ID, len(c.Policies))
	}
	cp := &c.Policies[0]
	p := t.System.Planner()
	own := p.Table()
	if own.NumStates() != cp.States || own.NumActions() != cp.Actions {
		return fmt.Errorf("fleet: checkpoint %s shape %dx%d does not match activity", t.ID, cp.States, cp.Actions)
	}
	if err := own.SetValues(cp.Q); err != nil {
		return err
	}
	p.Restore(cp.Episodes, cp.Epsilon)
	return nil
}

// save checkpoints the learned policy — Q-values plus the annealing
// state — through the backend's crash-safe rotation, reusing the
// shard's saver buffers and the tenant's cached routine encoding. fsync
// is false for incremental checkpoints and true for final flushes (see
// store.MultiSaver.Save).
func (t *Tenant) save(b store.Backend, sv *store.MultiSaver, fsync bool) error {
	p := t.System.Planner()
	t.tables[0] = p.Table()
	t.states[0] = store.TrainState{Episodes: p.Episodes, Epsilon: p.Epsilon()}
	return sv.Save(b, t.ID, t.ID, t.activity.Name, t.enc, t.tables[:], t.states[:], fsync)
}
