package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"coreda"
	"coreda/internal/adl"
	"coreda/internal/rl"
	"coreda/internal/sim"
	"coreda/internal/store"
)

// Tenant is one resident household: a full CoReDA stack on its own
// virtual clock. It is owned by its shard's loop goroutine — fleet users
// only touch a Tenant inside Fleet.Do.
type Tenant struct {
	// ID is the household ID.
	ID string
	// Sched is the tenant's private virtual clock. All of the tenant's
	// timers (idle watchdogs, reminder escalation) live here, which is
	// what makes its behaviour independent of shard count and load.
	Sched *sim.Scheduler
	// Hub routes the household's gateway traffic by tool.
	Hub *coreda.Hub
	// System is the stack for the household's instrumented activity.
	System *coreda.System

	activity *coreda.Activity
	// lastEvent is the virtual time of the last delivered event; the
	// idle-eviction clock measures from here.
	lastEvent time.Duration
	// dirty marks events since the last checkpoint.
	dirty bool
	// loadErr records why a checkpoint could not be restored (the tenant
	// then started fresh).
	loadErr error
}

// recovery says how a tenant came up.
type recovery int

const (
	// recoveredFresh: no checkpoint on disk, blank policy.
	recoveredFresh recovery = iota
	// recoveredCheckpoint: learned policy restored from the file.
	recoveredCheckpoint
	// recoveredError: a checkpoint existed but was unusable (see
	// Tenant.loadErr); the tenant started fresh.
	recoveredError
)

// newTenant builds the household stack and restores its checkpoint file
// if one exists.
func newTenant(id string, cfg coreda.SystemConfig, path string) (*Tenant, recovery, error) {
	if cfg.Activity == nil {
		return nil, 0, fmt.Errorf("fleet: NewSystem config for %q has no activity", id)
	}
	sched := sim.New()
	hub := coreda.NewHub(sched)
	sys, err := hub.Add(cfg)
	if err != nil {
		return nil, 0, err
	}
	t := &Tenant{ID: id, Sched: sched, Hub: hub, System: sys, activity: cfg.Activity}
	if !checkpointExists(path) {
		return t, recoveredFresh, nil
	}
	if err := t.load(path); err != nil {
		t.loadErr = err
		return t, recoveredError, nil
	}
	return t, recoveredCheckpoint, nil
}

// checkpointExists reports whether a checkpoint (or its rotated backup —
// a crash can leave only the backup behind) is on disk.
func checkpointExists(path string) bool {
	if _, err := os.Stat(path); err == nil {
		return true
	}
	_, err := os.Stat(path + store.BackupSuffix)
	return err == nil
}

// load restores the learned policy and training progress from a
// checkpoint written by save.
func (t *Tenant) load(path string) error {
	f, _, tables, err := store.LoadMultiPolicy(path)
	if err != nil {
		return err
	}
	if f.Activity != t.activity.Name {
		return fmt.Errorf("fleet: checkpoint %s is for activity %q, tenant runs %q", path, f.Activity, t.activity.Name)
	}
	if len(tables) != 1 {
		return fmt.Errorf("fleet: checkpoint %s has %d policies, want 1", path, len(tables))
	}
	p := t.System.Planner()
	own := p.Table()
	if own.NumStates() != tables[0].NumStates() || own.NumActions() != tables[0].NumActions() {
		return fmt.Errorf("fleet: checkpoint %s shape %dx%d does not match activity", path, tables[0].NumStates(), tables[0].NumActions())
	}
	if err := own.SetValues(tables[0].Values()); err != nil {
		return err
	}
	p.Restore(f.Policies[0].Episodes, f.Policies[0].Epsilon)
	return nil
}

// save checkpoints the learned policy — Q-values plus the annealing
// state — through the store's crash-safe rotation.
func (t *Tenant) save(path string) error {
	p := t.System.Planner()
	return store.SaveMultiPolicy(path, t.ID, t.activity.Name,
		[]adl.Routine{t.activity.CanonicalRoutine()},
		[]*rl.QTable{p.Table()},
		[]store.TrainState{{Episodes: p.Episodes, Epsilon: p.Epsilon()}})
}

// policyPath is the checkpoint file of a household.
func (f *Fleet) policyPath(household string) string {
	return filepath.Join(f.cfg.Dir, household+".json")
}

// sortedHouseholds returns a shard's resident household IDs in lexical
// order, for deterministic sweep and flush order.
func sortedHouseholds(tenants map[string]*Tenant) []string {
	out := make([]string, 0, len(tenants))
	for id := range tenants {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
