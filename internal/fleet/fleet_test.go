package fleet

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"coreda"
	"coreda/internal/adl"
)

// testConfig is a minimal fleet over tea-making households in dir.
func testConfig(dir string) Config {
	return Config{
		Shards: 2,
		Dir:    dir,
		NewSystem: func(household string) (coreda.SystemConfig, error) {
			return coreda.SystemConfig{
				Activity: adl.TeaMaking(),
				UserName: household,
				Seed:     SeedFor(7, household),
			}, nil
		},
	}
}

// deliverSession drives one complete tea-making session (usage start/end
// for every step, in order) for a household, starting at base.
func deliverSession(t *testing.T, f *Fleet, household string, base time.Duration) time.Duration {
	t.Helper()
	activity := adl.TeaMaking()
	now := base
	for _, step := range activity.Steps {
		now += 5 * time.Second
		if err := f.Deliver(Event{
			Household: household,
			At:        now,
			Kind:      EventUsage,
			Usage:     coreda.UsageEvent{Tool: step.Tool, Kind: coreda.UsageStarted},
		}); err != nil {
			t.Fatal(err)
		}
		now += 2 * time.Second
		if err := f.Deliver(Event{
			Household: household,
			At:        now,
			Kind:      EventUsage,
			Usage:     coreda.UsageEvent{Tool: step.Tool, Kind: coreda.UsageEnded, Duration: 2 * time.Second},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return now
}

func TestLazyAdmissionAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	f, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	deliverSession(t, f, "tanaka", 0)
	f.Flush()

	if _, err := os.Stat(filepath.Join(dir, "tanaka.ckpt")); err != nil {
		t.Fatalf("no checkpoint after Flush: %v", err)
	}
	var episodes int
	err = f.Do("tanaka", func(tn *Tenant) error {
		episodes = tn.System.Planner().Episodes
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if episodes != 1 {
		t.Errorf("episodes after one session = %d, want 1", episodes)
	}
	f.Stop()

	st := f.Stats()
	if st.Admissions != 1 || st.Recovered != 0 || st.Events != 8 || st.Checkpoints != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Resident != 1 {
		t.Errorf("resident = %d, want 1", st.Resident)
	}
}

func TestEvictionAndReadmission(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.IdleEvict = time.Minute
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	end := deliverSession(t, f, "sato", 0)

	// Idle past the deadline: the tenant must checkpoint and leave.
	if err := f.Deliver(Event{Household: "sato", At: end + 2*time.Minute, Kind: EventAdvance}); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Evictions != 1 || st.Resident != 0 || st.Checkpoints != 1 {
		t.Fatalf("after idle gap: stats = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "sato.ckpt")); err != nil {
		t.Fatalf("eviction wrote no checkpoint: %v", err)
	}

	// The next session re-admits from the checkpoint, training state
	// intact.
	deliverSession(t, f, "sato", end+3*time.Minute)
	var episodes int
	if err := f.Do("sato", func(tn *Tenant) error {
		episodes = tn.System.Planner().Episodes
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if episodes != 2 {
		t.Errorf("episodes after evict + re-admit + session = %d, want 2", episodes)
	}
	f.Stop()
	st = f.Stats()
	if st.Admissions != 2 || st.Recovered != 1 || st.RecoveryErrors != 0 {
		t.Errorf("final stats = %+v", st)
	}
}

func TestMidSessionTenantIsNotEvicted(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.IdleEvict = time.Minute
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	// One step only: the session stays active.
	if err := f.Deliver(Event{
		Household: "abe",
		At:        time.Second,
		Kind:      EventUsage,
		Usage:     coreda.UsageEvent{Tool: adl.ToolTeaBox, Kind: coreda.UsageStarted},
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Deliver(Event{Household: "abe", At: 10 * time.Minute, Kind: EventAdvance}); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.Evictions != 0 || st.Resident != 1 {
		t.Errorf("mid-session tenant evicted: %+v", st)
	}
}

func TestCorruptCheckpointStartsFresh(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ito.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	deliverSession(t, f, "ito", 0)
	f.Stop()
	st := f.Stats()
	if st.RecoveryErrors != 1 || st.Recovered != 0 || st.Admissions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Events != 8 {
		t.Errorf("events = %d, want 8 (traffic must flow despite the bad file)", st.Events)
	}
}

func TestDeliverRejectsInvalidHousehold(t *testing.T) {
	f, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()
	for _, id := range []string{"", ".hidden", "a/b", "x y", string(make([]byte, 100))} {
		if err := f.Deliver(Event{Household: id, Kind: EventAdvance}); err == nil {
			t.Errorf("household %q accepted", id)
		}
	}
	if err := f.Deliver(Event{Household: "ok-1.A_b", Kind: EventAdvance}); err != nil {
		t.Errorf("legal household rejected: %v", err)
	}
}

func TestLifecycleGuards(t *testing.T) {
	f, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deliver(Event{Household: "a", Kind: EventAdvance}); err == nil {
		t.Error("Deliver before Start accepted")
	}
	f.Start()
	f.Stop()
	f.Stop() // idempotent
	if err := f.Deliver(Event{Household: "a", Kind: EventAdvance}); err == nil {
		t.Error("Deliver after Stop accepted")
	}
	if err := f.Do("a", func(*Tenant) error { return nil }); err == nil {
		t.Error("Do after Stop accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dir: ""}); err == nil {
		t.Error("missing Dir accepted")
	}
	if _, err := New(Config{Dir: t.TempDir()}); err == nil {
		t.Error("missing NewSystem accepted")
	}
}

func TestEvictNowCheckpointsAndReleases(t *testing.T) {
	dir := t.TempDir()
	f, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()
	deliverSession(t, f, "handoff-src", 0)

	if err := f.EvictNow("handoff-src"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "handoff-src.ckpt")); err != nil {
		t.Fatalf("EvictNow wrote no checkpoint: %v", err)
	}
	st := f.Stats()
	if st.Evictions != 1 || st.Resident != 0 || st.Checkpoints != 1 {
		t.Errorf("after EvictNow: stats = %+v", st)
	}
	// Evicting a household that is not resident is a no-op.
	if err := f.EvictNow("never-admitted"); err != nil {
		t.Fatal(err)
	}
	// Re-admission restores the checkpointed learning.
	var episodes int
	if err := f.Do("handoff-src", func(tn *Tenant) error {
		episodes = tn.System.Planner().Episodes
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if episodes != 1 {
		t.Errorf("episodes after EvictNow + re-admit = %d, want 1", episodes)
	}
}

func TestMarkKnownAdmitsFromForeignBlob(t *testing.T) {
	dir := t.TempDir()

	// First fleet learns one session and checkpoints it.
	f1, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	f1.Start()
	deliverSession(t, f1, "migrant", 0)
	f1.Stop()

	// Second fleet starts over an empty dir; the blob "arrives" later,
	// out-of-band (as a cluster replica write would), so the fleet's
	// known-checkpoint set does not include it.
	dir2 := t.TempDir()
	f2, err := New(testConfig(dir2))
	if err != nil {
		t.Fatal(err)
	}
	f2.Start()
	defer f2.Stop()
	blob, err := os.ReadFile(filepath.Join(dir, "migrant.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, "migrant.ckpt"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f2.MarkKnown("migrant"); err != nil {
		t.Fatal(err)
	}
	var episodes int
	if err := f2.Do("migrant", func(tn *Tenant) error {
		episodes = tn.System.Planner().Episodes
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if episodes != 1 {
		t.Errorf("episodes after MarkKnown admission = %d, want 1 (blob not restored)", episodes)
	}
	st := f2.Stats()
	if st.Recovered != 1 {
		t.Errorf("stats = %+v, want Recovered 1", st)
	}
}
