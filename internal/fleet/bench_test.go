package fleet

import (
	"fmt"
	"testing"
	"time"

	"coreda"
	"coreda/internal/adl"
)

// BenchmarkShardIngest measures the shard event loop's per-event cost —
// delivery, tenant lookup, virtual-clock advance, Hub dispatch and
// dirty-set tracking — with checkpointing left out of the loop (no
// flushes, no eviction). Traffic round-robins across households, the
// worst case for the shard's last-tenant cache.
func BenchmarkShardIngest(b *testing.B) {
	cfg := testConfig(b.TempDir())
	cfg.Shards = 1
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	const households = 16
	ids := make([]string, households)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%03d", i)
	}
	tool := adl.TeaMaking().Steps[0].Tool
	// Admit every household outside the timer; Stats is a shard barrier,
	// so admissions have finished when it returns.
	for _, id := range ids {
		if err := f.Deliver(Event{Household: id, Kind: EventAdvance}); err != nil {
			b.Fatal(err)
		}
	}
	f.Stats()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := Event{
			Household: ids[i%households],
			At:        time.Duration(i) * time.Millisecond,
			Kind:      EventUsage,
			Usage:     coreda.UsageEvent{Tool: tool, Kind: coreda.UsageStarted},
		}
		if err := f.Deliver(ev); err != nil {
			b.Fatal(err)
		}
	}
	f.Stats() // barrier: the shard has drained its queue
}
