package fleet

import (
	"fmt"
	"testing"
	"time"

	"coreda"
	"coreda/internal/adl"
)

// BenchmarkShardIngest measures the shard event loop's per-event cost —
// delivery, tenant lookup, virtual-clock advance, Hub dispatch and
// dirty-set tracking — with checkpointing left out of the loop (no
// flushes, no eviction). Traffic round-robins across households, the
// worst case for the shard's last-tenant cache.
func BenchmarkShardIngest(b *testing.B) {
	cfg := testConfig(b.TempDir())
	cfg.Shards = 1
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	const households = 16
	ids := make([]string, households)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%03d", i)
	}
	tool := adl.TeaMaking().Steps[0].Tool
	// Admit every household outside the timer; Stats is a shard barrier,
	// so admissions have finished when it returns.
	for _, id := range ids {
		if err := f.Deliver(Event{Household: id, Kind: EventAdvance}); err != nil {
			b.Fatal(err)
		}
	}
	f.Stats()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := Event{
			Household: ids[i%households],
			At:        time.Duration(i) * time.Millisecond,
			Kind:      EventUsage,
			Usage:     coreda.UsageEvent{Tool: tool, Kind: coreda.UsageStarted},
		}
		if err := f.Deliver(ev); err != nil {
			b.Fatal(err)
		}
	}
	f.Stats() // barrier: the shard has drained its queue
}

// idleFleetShard builds an unstarted single-shard fleet with `resident`
// households, `active` of which are mid-session (idle watchdog armed ~30s
// out); the rest are fully quiesced. The fleet is never Started, so the
// shard is driven directly on the caller's goroutine — which is what
// makes the advance benchmarks single-threaded and their allocs/op
// numbers exact.
func idleFleetShard(b *testing.B, resident, active int, mode AdvanceMode) *shard {
	b.Helper()
	cfg := testConfig(b.TempDir())
	cfg.Shards = 1
	cfg.Control = ControlInline
	cfg.Advance = mode
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s := f.shards[0]
	tool := adl.TeaMaking().Steps[0].Tool
	for i := 0; i < resident; i++ {
		id := fmt.Sprintf("idle-%05d", i)
		if _, err := s.admit(id); err != nil {
			b.Fatal(err)
		}
		if i < active {
			s.handle(Event{
				Household: id,
				Kind:      EventUsage,
				Usage:     coreda.UsageEvent{Tool: tool, Kind: coreda.UsageStarted},
			})
		}
	}
	return s
}

// benchAdvance drives shard-level clock-pump ticks over a mostly-idle
// population: 10k resident households, 1% of them mid-session. Ticks
// step 1µs, staying short of the active sessions' ~30s watchdogs, so
// every tick is the pump's steady-state case — nothing is due yet, but
// the shard must establish that. The indexed path answers with one heap
// peek; the sweep walks and sorts all 10k tenants.
func benchAdvance(b *testing.B, mode AdvanceMode) {
	const resident, active = 10000, 100
	s := idleFleetShard(b, resident, active, mode)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.advanceAll(time.Duration(i) * time.Microsecond)
	}
}

// BenchmarkAdvanceIdle is the due-time index's headline number: the
// per-tick cost of advancing a shard where almost every household is
// idle. Gated ≥10x below BenchmarkAdvanceIdleSweep (scripts/bench.sh
// records both in BENCH_fleet.json).
func BenchmarkAdvanceIdle(b *testing.B) { benchAdvance(b, AdvanceIndexed) }

// BenchmarkAdvanceIdleSweep is the pre-index baseline: every tick walks
// the full resident population in sorted order.
func BenchmarkAdvanceIdleSweep(b *testing.B) { benchAdvance(b, AdvanceSweep) }
