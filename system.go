package coreda

import (
	"fmt"
	"math/rand"
	"time"

	"coreda/internal/adl"
	"coreda/internal/core"
	"coreda/internal/reminding"
	"coreda/internal/sensing"
	"coreda/internal/sensornet"
	"coreda/internal/sim"
	"coreda/internal/store"
	"coreda/internal/wire"
)

// Mode selects how a session treats the user's behaviour.
type Mode int

// Session modes.
const (
	// ModeLearn observes silently: every step feeds the learner, no
	// reminders are issued. This is how a routine is acquired.
	ModeLearn Mode = iota + 1
	// ModeAssist compares behaviour against the learned routine and
	// reminds on the paper's two trigger situations. Learning may
	// continue (SystemConfig.KeepLearning) or the policy stays frozen.
	ModeAssist
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeLearn:
		return "learn"
	case ModeAssist:
		return "assist"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SystemConfig configures a System.
type SystemConfig struct {
	// Activity is the ADL being supported.
	Activity *Activity
	// UserName personalizes specific reminders.
	UserName string
	// Planner tunes the TD(λ) Q-learning planner (zero value = paper
	// defaults).
	Planner PlannerConfig
	// Sensing tunes the sensing subsystem (zero value = defaults; the
	// Activity field is filled in automatically).
	Sensing sensing.Config
	// Reminding tunes the reminding subsystem (zero value = defaults;
	// Activity and UserName are filled in automatically).
	Reminding reminding.Config
	// KeepLearning keeps updating the policy during ModeAssist sessions.
	KeepLearning bool
	// DefaultMode is the mode auto-started sessions use (Hub routing,
	// rtbridge); zero means ModeLearn.
	DefaultMode Mode
	// AssumeBlindSteps lets an assist session advance past a step whose
	// tool's sensor is OFFLINE: after a reminder for the blind step goes
	// unanswered for one more idle period, the step is presumed done and
	// the session moves on, so one dead battery does not freeze the whole
	// routine. Off by default (conservative: never assume).
	AssumeBlindSteps bool
	// InferSkips enables missed-detection recovery: when the "wrong"
	// tool observed is exactly what the policy expects AFTER the
	// expected step, the system infers that the expected step happened
	// but its detection was missed (Table 3: extraction is imperfect)
	// and accepts both steps instead of reminding. The flip side is that
	// a genuinely wrong tool which happens to coincide with the
	// next-next step goes uncorrected, so this deployment-hardening
	// option is off by default (paper-faithful: every mismatch triggers
	// situation 2).
	InferSkips bool
	// Seed drives the planner's exploration. The same seed reproduces
	// the same learned policy for the same inputs.
	Seed int64

	// OnSessionStart is called when a session begins (may be nil).
	OnSessionStart func(Mode)
	// OnStep is called for every step event the sensing subsystem
	// extracts during a session, before the system reacts to it (may be
	// nil). Session recorders hang off this hook.
	OnStep func(StepEvent)
	// OnReminder is called for every delivered reminder (may be nil).
	OnReminder func(Reminder)
	// OnPraise is called for every praise (may be nil).
	OnPraise func(Praise)
	// OnAlert is called for every caregiver alert — a tool's sensor node
	// declared offline, or its recovery (may be nil).
	OnAlert func(CaregiverAlert)
	// OnComplete is called when a session observes every step of the
	// activity (may be nil).
	OnComplete func()
	// LEDs, if non-nil, receives LED blink commands (wire it to a
	// sensornet gateway or a recording fake).
	LEDs reminding.LEDs
}

// SystemStats aggregates the per-subsystem counters.
type SystemStats struct {
	Sensing   sensing.Stats
	Reminding reminding.Stats
	// Sessions counts completed sessions.
	Sessions int
	// WrongToolEvents counts steps rejected as trigger situation 2.
	WrongToolEvents int
	// AcceptedSteps counts steps accepted as routine progress.
	AcceptedSteps int
	// InferredSteps counts expected steps the sensors missed but the
	// system inferred from the step that followed (skip recovery).
	InferredSteps int
	// DegradedEvents counts tool sensors declared offline; Recoveries
	// counts them coming back.
	DegradedEvents int
	Recoveries     int
	// PresumedSteps counts blind steps advanced past without a detection
	// (AssumeBlindSteps).
	PresumedSteps int
}

// System is the full CoReDA stack for one user and one activity.
//
// It is single-threaded: drive it from a sim.Scheduler (simulation) or a
// single gateway goroutine (deployment).
type System struct {
	cfg     SystemConfig
	sched   *sim.Scheduler
	sensing *sensing.Subsystem
	planner *core.Planner
	session *core.OnlineSession
	remind  *reminding.Subsystem
	rng     *rand.Rand

	mode          Mode
	active        bool
	stepsAccepted int
	expected      Prompt
	hasExpected   bool
	// outstanding marks that a reminder was issued and not yet answered;
	// answering it earns praise (Figure 1), and re-triggering before it
	// is answered marks it failed (negative evidence for the learner).
	outstanding bool
	lastPrompt  Prompt

	// offline marks tools whose sensor node the gateway supervision has
	// declared dead; reminders about them escalate and, optionally, blind
	// steps are presumed done (graceful degradation).
	offline map[ToolID]bool

	stats SystemStats
}

// display adapts the System's callbacks to the reminding.Display
// interface.
type display struct{ s *System }

func (d display) ShowReminder(r reminding.Reminder) {
	if d.s.cfg.OnReminder != nil {
		d.s.cfg.OnReminder(r)
	}
}

func (d display) ShowPraise(p reminding.Praise) {
	if d.s.cfg.OnPraise != nil {
		d.s.cfg.OnPraise(p)
	}
}

// alertSink adapts the System's OnAlert callback to reminding.AlertSink.
type alertSink struct{ s *System }

func (a alertSink) ShowAlert(al reminding.Alert) {
	if a.s.cfg.OnAlert != nil {
		a.s.cfg.OnAlert(al)
	}
}

// NewSystem builds the stack on the given scheduler.
func NewSystem(cfg SystemConfig, sched *sim.Scheduler) (*System, error) {
	if cfg.Activity == nil {
		return nil, fmt.Errorf("coreda: SystemConfig.Activity is required")
	}
	if err := cfg.Activity.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		sched:   sched,
		rng:     sim.RNG(cfg.Seed, "system"),
		offline: make(map[ToolID]bool),
	}

	planner, err := core.NewPlanner(cfg.Activity, cfg.Planner, sim.RNG(cfg.Seed, "planner"))
	if err != nil {
		return nil, err
	}
	s.planner = planner

	cfg.Sensing.Activity = cfg.Activity
	sensor, err := sensing.New(cfg.Sensing, sched, s.onStep)
	if err != nil {
		return nil, err
	}
	s.sensing = sensor

	cfg.Reminding.Activity = cfg.Activity
	if cfg.Reminding.UserName == "" {
		cfg.Reminding.UserName = cfg.UserName
	}
	rem, err := reminding.New(cfg.Reminding, display{s}, cfg.LEDs)
	if err != nil {
		return nil, err
	}
	s.remind = rem
	rem.SetAlertSink(alertSink{s})
	return s, nil
}

// Planner exposes the planning subsystem (training, persistence,
// inspection).
func (s *System) Planner() *core.Planner { return s.planner }

// Stats returns a snapshot of the aggregated counters.
func (s *System) Stats() SystemStats {
	st := s.stats
	st.Sensing = s.sensing.Stats
	st.Reminding = s.remind.Stats
	return st
}

// Mode returns the current session mode (zero if no session is active).
func (s *System) Mode() Mode { return s.mode }

// DefaultMode returns the mode auto-started sessions use.
func (s *System) DefaultMode() Mode {
	if s.cfg.DefaultMode == 0 {
		return ModeLearn
	}
	return s.cfg.DefaultMode
}

// Active reports whether a session is in progress.
func (s *System) Active() bool { return s.active }

// HandleUsage consumes a gateway usage event; wire it as the
// sensornet.Gateway handler.
func (s *System) HandleUsage(e UsageEvent) { s.sensing.HandleUsage(e) }

// SetToolOnline records a tool sensor's liveness, as reported by gateway
// supervision (wire it via Hub.HandleNodeState or directly as the
// gateway's node-state handler). Transitions raise a caregiver alert;
// repeated reports of the same state are ignored.
func (s *System) SetToolOnline(tool ToolID, online bool) {
	if online != s.offline[tool] {
		return // no transition
	}
	name := fmt.Sprintf("tool %d", int(tool))
	if t, ok := s.cfg.Activity.Tool(tool); ok {
		name = t.Name
	}
	if online {
		delete(s.offline, tool)
		s.stats.Recoveries++
		s.remind.Alert(reminding.Alert{
			At:        s.sched.Now(),
			Tool:      tool,
			Text:      fmt.Sprintf("Sensor node for the %s is back online.", name),
			Recovered: true,
		})
		return
	}
	s.offline[tool] = true
	s.stats.DegradedEvents++
	s.remind.Alert(reminding.Alert{
		At:   s.sched.Now(),
		Tool: tool,
		Text: fmt.Sprintf("Sensor node for the %s is OFFLINE — please check the node and its battery.", name),
	})
}

// Degraded reports whether any tool sensor is currently offline.
func (s *System) Degraded() bool { return len(s.offline) > 0 }

// OfflineTools lists the tools whose sensors are currently offline, in
// ascending ID order.
func (s *System) OfflineTools() []ToolID {
	var out []ToolID
	for _, t := range adl.SortedToolIDs(s.cfg.Activity.Tools) {
		if s.offline[t] {
			out = append(out, t)
		}
	}
	return out
}

// StartSession begins a session in the given mode.
func (s *System) StartSession(mode Mode) {
	s.mode = mode
	s.active = true
	s.stepsAccepted = 0
	s.hasExpected = false
	s.outstanding = false
	learn := mode == ModeLearn || s.cfg.KeepLearning
	s.session = core.NewOnlineSession(s.planner, learn)
	s.sensing.Start()
	if s.cfg.OnSessionStart != nil {
		s.cfg.OnSessionStart(mode)
	}
	// With the initial-prompt extension the session can expect the first
	// step right away, so even a freeze before any tool use is caught.
	if p, ok := s.session.Predict(); ok && mode == ModeAssist {
		s.expected, s.hasExpected = p, true
		s.sensing.SetExpected(p.Tool)
	}
}

// EndSession finishes the session, applying terminal credit when the
// activity completed.
func (s *System) EndSession() {
	if !s.active {
		return
	}
	s.session.Complete()
	s.sensing.Stop()
	s.active = false
	s.stats.Sessions++
}

// Predict returns the system's current expectation of the next tool.
func (s *System) Predict() (Prompt, bool) {
	if s.session == nil {
		return Prompt{}, false
	}
	return s.session.Predict()
}

// TrainEpisodes feeds pre-recorded complete episodes to the planner (bulk
// offline training, e.g. from the node EEPROM logs or a tool-usage
// archive).
func (s *System) TrainEpisodes(episodes [][]StepID) error {
	for i, ep := range episodes {
		if err := s.planner.TrainEpisode(ep); err != nil {
			return fmt.Errorf("coreda: episode %d: %w", i, err)
		}
	}
	return nil
}

// SavePolicy persists the learned policy in the default (binary CKPT)
// encoding.
func (s *System) SavePolicy(path string) error {
	return s.SavePolicyFormat(path, store.FormatBinary)
}

// SavePolicyFormat persists the learned policy with an explicit on-disk
// encoding (the -store-format plumbing for cmd/coreda-server). Either
// format loads back transparently via content sniffing.
func (s *System) SavePolicyFormat(path string, format store.Format) error {
	return store.SavePolicyFormat(path, format, s.cfg.UserName, s.cfg.Activity.Name, s.planner.Table(), s.planner.Episodes, s.planner.Epsilon())
}

// LoadPolicy restores a previously saved policy into the planner. The
// file must match the activity's state/action shape.
func (s *System) LoadPolicy(path string) error {
	f, table, err := store.LoadPolicy(path)
	if err != nil {
		return err
	}
	if f.Activity != s.cfg.Activity.Name {
		return fmt.Errorf("coreda: policy is for activity %q, system runs %q", f.Activity, s.cfg.Activity.Name)
	}
	if table.NumStates() != s.planner.Table().NumStates() || table.NumActions() != s.planner.Table().NumActions() {
		return fmt.Errorf("coreda: policy shape %dx%d does not match activity", table.NumStates(), table.NumActions())
	}
	if err := s.planner.Table().SetValues(table.Values()); err != nil {
		return err
	}
	// Restore training progress too, so a reloaded system checkpoints
	// byte-for-byte identically and resumed training continues the
	// annealing schedule.
	s.planner.Restore(f.Episodes, f.Epsilon)
	return nil
}

// onStep receives extracted step events from the sensing subsystem.
func (s *System) onStep(e sensing.StepEvent) {
	if !s.active {
		return
	}
	if s.cfg.OnStep != nil {
		s.cfg.OnStep(e)
	}
	if e.Idle {
		s.onIdle(e)
		return
	}
	switch s.mode {
	case ModeLearn:
		s.acceptStep(e, false)
	case ModeAssist:
		if s.hasExpected && adl.StepOf(s.expected.Tool) != e.Step {
			s.onWrongTool(e)
			return
		}
		s.acceptStep(e, s.outstanding)
	}
}

// acceptStep advances the learned chain and updates expectations.
func (s *System) acceptStep(e sensing.StepEvent, praise bool) {
	s.stats.AcceptedSteps++
	s.stepsAccepted++
	s.outstanding = false
	s.remind.NoteProgress(e.At, praise)

	next, ok := s.session.Observe(e.Step)
	s.expected, s.hasExpected = next, ok
	if ok {
		s.sensing.SetExpected(next.Tool)
	}

	if s.stepsAccepted >= s.cfg.Activity.StepCount() {
		done := s.cfg.OnComplete
		s.EndSession()
		if done != nil {
			done()
		}
	}
}

// onIdle handles trigger situation 1: nothing done for the timeout.
func (s *System) onIdle(e sensing.StepEvent) {
	if s.mode != ModeAssist || !s.hasExpected {
		return
	}
	if s.cfg.AssumeBlindSteps && s.offline[s.expected.Tool] && s.outstanding {
		// The expected tool's sensor is blind, so no detection can ever
		// answer the reminder already issued. Presume the step done and
		// move on rather than freezing the whole routine.
		s.stats.PresumedSteps++
		s.acceptStep(sensing.StepEvent{Step: adl.StepOf(s.expected.Tool), At: e.At}, false)
		return
	}
	s.issueReminder(e.At, reminding.TriggerIdle, adl.NoTool)
}

// onWrongTool handles trigger situation 2: an out-of-order tool — unless
// the observed step is exactly what the policy expects AFTER the expected
// step, in which case the expected step was performed but its detection
// was missed (Table 3: extraction is not perfect). The system then infers
// the missed step and accepts the observed one, instead of fighting a
// user who is actually on track.
func (s *System) onWrongTool(e sensing.StepEvent) {
	if s.cfg.InferSkips && s.inferSkip(e) {
		return
	}
	s.stats.WrongToolEvents++
	s.issueReminder(e.At, reminding.TriggerWrongTool, adl.ToolOf(e.Step))
}

// inferSkip checks whether e is explainable as "expected step missed by
// the sensors, user already on the step after it" and, if so, feeds the
// inferred step through before accepting e.
func (s *System) inferSkip(e sensing.StepEvent) bool {
	expectedStep := adl.StepOf(s.expected.Tool)
	_, cur, ok := s.session.Current()
	if !ok {
		return false
	}
	after, ok := s.planner.Predict(cur, expectedStep)
	if !ok || adl.StepOf(after.Tool) != e.Step {
		return false
	}
	s.stats.InferredSteps++
	s.acceptStep(sensing.StepEvent{Step: expectedStep, At: e.At}, false)
	if s.active { // accepting the inferred step may have completed the session
		s.acceptStep(e, s.outstanding)
	}
	return true
}

func (s *System) issueReminder(at time.Duration, trigger reminding.Trigger, wrongTool ToolID) {
	if s.outstanding {
		// The previous reminder went unanswered: negative evidence.
		s.session.NoteFailedPrompt(s.lastPrompt)
	}
	prompt := s.expected
	if p, ok := s.session.DeliverablePrompt(); ok {
		prompt = p
	}
	if s.offline[prompt.Tool] && prompt.Level != core.Specific {
		// The tool's green LED cannot blink while its node is dead, so the
		// remaining channels carry the full load: always go specific.
		prompt.Level = core.Specific
	}
	r, err := s.remind.Remind(at, prompt, trigger, wrongTool)
	if err != nil {
		return
	}
	s.outstanding = true
	s.lastPrompt = Prompt{Tool: r.Tool, Level: r.Level}
	// Tell the learner what was actually delivered (level may have been
	// escalated above the planner's choice).
	s.session.NotePrompt(s.lastPrompt)
}

// GatewayLEDs adapts a sensornet gateway to the reminding.LEDs interface,
// closing the loop from reminders back to the tools' radio nodes.
type GatewayLEDs struct {
	// Gateway is the radio endpoint commands are sent through.
	Gateway *sensornet.Gateway
}

// Blink implements reminding.LEDs.
func (g GatewayLEDs) Blink(tool ToolID, color wire.LEDColor, blinks int, period time.Duration) {
	if blinks < 0 {
		blinks = 0
	}
	if blinks > 255 {
		blinks = 255
	}
	g.Gateway.SendLED(uint16(tool), color, uint8(blinks), period)
}
