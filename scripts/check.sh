#!/usr/bin/env bash
# Single CI entrypoint: formatting gate, stock vet, CoReDA's own static
# analyzers, then the full test suite under the race detector. Mirrors
# `make check` (plus the gofmt gate, which make leaves to editors).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

# hotalloc is excluded here and run in the no-race phase below: it
# shells out to `go build -gcflags=-m=2`, and escape analysis must be
# judged on the same build mode the alloc budgets run under.
echo "== coreda-vet"
go run ./cmd/coreda-vet -skip hotalloc ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

# The zero-allocation budgets on the serving path skip themselves under
# the race detector (its instrumentation allocates), so they are
# enforced by an explicit no-race pass over the serving packages:
# the wire codec, the timer core, the shard ingest + clock-pump loops,
# the node client's report path, and the CKPT checkpoint codec. The
# hotalloc analyzer rides in the same phase — it names the escaping
# expression when a //coreda:hotpath function regresses, which an
# AllocsPerRun count never does.
echo "== alloc budgets (no race)"
go test -run 'Alloc' ./internal/wire/ ./internal/sim/ ./internal/fleet/ ./internal/rtbridge/ ./internal/store/
go run ./cmd/coreda-vet -only hotalloc ./...

# Advance parity gate: the due-time tenant index must be observationally
# equivalent to the pre-index full sweep — identical digests at 1/4/8
# shards (TestAdvanceParity) and identical late-event clamping via the
# lazy tick floor (TestLateEventAfterTickParity). The differential test
# pins the scheduler itself against a naive reference implementation.
echo "== advance parity (indexed vs sweep, race-enabled)"
go test -race -count 1 -run 'TestAdvanceParity|TestLateEventAfterTickParity|TestDueHeap' ./internal/fleet/
go test -race -count 1 -run 'TestSchedulerMatchesNaiveReference' ./internal/sim/

echo "== chaos soak (workers 1 vs 4 must match)"
go run ./cmd/coreda-bench -workers 1 chaos > /tmp/coreda-soak-w1.txt
go run ./cmd/coreda-bench -workers 4 chaos > /tmp/coreda-soak-w4.txt
diff /tmp/coreda-soak-w1.txt /tmp/coreda-soak-w4.txt
rm -f /tmp/coreda-soak-w1.txt /tmp/coreda-soak-w4.txt

# Shard-count parity gate: a race-enabled 1000-household fleet soak must
# produce byte-identical output (stats + policy digest; stdout
# deliberately omits the shard count) whether the tenants share one shard
# event loop or are spread across eight. This is the end-to-end proof
# that internal/fleet's concurrency never leaks into what a household
# learns.
echo "== fleet soak (shards 1 vs 4 vs 8 must match, race-enabled)"
for n in 1 4 8; do
    go run -race ./cmd/coreda-bench -households 1000 -fleet-shards "$n" fleet > "/tmp/coreda-fleet-s$n.txt"
done
diff /tmp/coreda-fleet-s1.txt /tmp/coreda-fleet-s4.txt
diff /tmp/coreda-fleet-s1.txt /tmp/coreda-fleet-s8.txt

# Storage-format parity gate: the same soak with JSON checkpoints must
# produce the same stdout — including the policy digest, which decodes
# and canonicalizes blobs precisely so that the on-disk encoding can
# never change what a household learned.
echo "== fleet soak (store-format json must match binary, race-enabled)"
go run -race ./cmd/coreda-bench -households 1000 -store-format json fleet > /tmp/coreda-fleet-json.txt
diff /tmp/coreda-fleet-s1.txt /tmp/coreda-fleet-json.txt

# Control-plane parity gate: the same soak with the control queue
# disabled (-fleet-control inline, the pre-queue code path where each
# shard writes its evictions and checkpoints in place) must produce
# byte-identical stdout at every shard count — the proof that moving
# control work onto the queue's drain boundary changed scheduling, not
# outcomes. A further run injects failures into the queued jobs: the
# retry budget must absorb them without touching a digest (stdout
# deliberately omits control mode, job-failure rate and retry counts).
echo "== fleet soak (control queue vs inline vs jobfail must match, race-enabled)"
for n in 1 4 8; do
    go run -race ./cmd/coreda-bench -households 1000 -fleet-shards "$n" -fleet-control inline fleet > "/tmp/coreda-fleet-inline-s$n.txt"
    diff "/tmp/coreda-fleet-s$n.txt" "/tmp/coreda-fleet-inline-s$n.txt"
done
go run -race ./cmd/coreda-bench -households 1000 -fleet-jobfail 0.2 fleet > /tmp/coreda-fleet-jobfail.txt
diff /tmp/coreda-fleet-s1.txt /tmp/coreda-fleet-jobfail.txt
rm -f /tmp/coreda-fleet-s{1,4,8}.txt /tmp/coreda-fleet-json.txt \
      /tmp/coreda-fleet-inline-s{1,4,8}.txt /tmp/coreda-fleet-jobfail.txt

# Cluster kill-recovery gate: the same soak split across 3 worker
# processes — one of which is SIGKILLed mid-run, after applying a round
# locally but before its replication barrier — must still produce a
# policy digest byte-identical to the fault-free single-process run.
# Survivors adopt the victim's households from their replica blobs and
# the driver replays the killed round. The bench "cluster" mode then
# re-checks fault-free digest parity at 1, 2 and 3 processes and exits
# non-zero on any divergence.
echo "== cluster soak (3 procs, SIGKILL one peer, digest parity, race-enabled)"
go test -race -count 1 -run 'TestClusterSoakMatchesSingleProcess|TestClusterSoakSurvivesSigkill' ./internal/cluster/
go run ./cmd/coreda-bench -cluster-households 24 -cluster-sessions 4 cluster

echo "ok"
