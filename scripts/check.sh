#!/usr/bin/env bash
# Single CI entrypoint: formatting gate, stock vet, CoReDA's own static
# analyzers, then the full test suite under the race detector. Mirrors
# `make check` (plus the gofmt gate, which make leaves to editors).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== coreda-vet"
go run ./cmd/coreda-vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== chaos soak (workers 1 vs 4 must match)"
go run ./cmd/coreda-bench -workers 1 chaos > /tmp/coreda-soak-w1.txt
go run ./cmd/coreda-bench -workers 4 chaos > /tmp/coreda-soak-w4.txt
diff /tmp/coreda-soak-w1.txt /tmp/coreda-soak-w4.txt
rm -f /tmp/coreda-soak-w1.txt /tmp/coreda-soak-w4.txt

echo "ok"
