#!/usr/bin/env bash
# Benchmark snapshot of the experiments layer and the RL hot paths: runs
# the parallel-runner benchmark (workers=1 vs 4) plus the planner/learner
# micro-benchmarks and records the numbers in BENCH_experiments.json,
# together with the host CPU budget that bounds any parallel speedup.
# Also soaks the multi-tenant fleet runtime and records its throughput
# (events/sec, households/shard) in BENCH_fleet.json.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_experiments.json
pattern='BenchmarkAblationsParallel|BenchmarkQLambdaObserve|BenchmarkPlannerTrainEpisode|BenchmarkPlannerPredict'

raw=$(go test -run '^$' -bench "$pattern" -benchmem -count 1 .)
echo "$raw"

{
    echo '{'
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"cpus\": $(getconf _NPROCESSORS_ONLN),"
    echo '  "note": "Parallel speedup is bounded by the cpus figure above: on a single-CPU host workers=4 measures pool overhead rather than speedup. Experiment output is byte-identical at every worker count.",'
    echo '  "benchmarks": ['
    echo "$raw" | awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            nsop = ""; bop = ""; allocs = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") nsop = $i
                if ($(i+1) == "B/op") bop = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, bop, allocs)
        }
        END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
    '
    echo '  ]'
    echo '}'
} > "$out"

echo "wrote $out"

# Wire codec: the zero-allocation serving fast paths (append-based
# encode, union decode, pooled writer, resyncing reader).
wout=BENCH_wire.json
wpattern='BenchmarkEncode|BenchmarkDecode|BenchmarkWritePacket|BenchmarkReadPacket'
wraw=$(go test -run '^$' -bench "$wpattern" -benchmem -count 1 ./internal/wire/)
echo "$wraw"

{
    echo '{'
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"cpus\": $(getconf _NPROCESSORS_ONLN),"
    echo '  "note": "Serving-path codec fast paths. allocs_per_op must stay 0 (enforced by TestServingFastPathsZeroAlloc in the no-race pass of scripts/check.sh).",'
    echo '  "benchmarks": ['
    echo "$wraw" | awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            nsop = ""; bop = ""; allocs = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") nsop = $i
                if ($(i+1) == "B/op") bop = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, bop, allocs)
        }
        END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
    '
    echo '  ]'
    echo '}'
} > "$wout"

echo "wrote $wout"

# Fleet throughput: 1000 households through the sharded runtime at the
# host's natural shard count. The deterministic soak outcome goes to
# stdout; the wall-clock numbers land in the JSON.
go run ./cmd/coreda-bench -households 1000 -fleet-json BENCH_fleet.json fleet
echo "wrote BENCH_fleet.json"
