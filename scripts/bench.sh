#!/usr/bin/env bash
# Benchmark snapshot of the experiments layer and the RL hot paths: runs
# the parallel-runner benchmark (workers=1 vs 4) plus the planner/learner
# micro-benchmarks and records the numbers in BENCH_experiments.json,
# together with the host CPU budget that bounds any parallel speedup.
# Also benchmarks the CKPT checkpoint codec against its JSON baseline
# (BENCH_store.json) and soaks the multi-tenant fleet runtime across a
# GOMAXPROCS x shards matrix, recording per-row throughput in
# BENCH_fleet.json.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_experiments.json
pattern='BenchmarkAblationsParallel|BenchmarkQLambdaObserve|BenchmarkPlannerTrainEpisode|BenchmarkPlannerPredict'

raw=$(go test -run '^$' -bench "$pattern" -benchmem -count 1 .)
echo "$raw"

# Timer core: the virtual clock's schedule/fire/re-arm/cancel cycles.
# Every row must stay at 0 allocs/op (TestSchedulerAllocBudgets in the
# no-race pass of scripts/check.sh locks the budgets; this records the
# time).
simraw=$(go test -run '^$' -bench 'BenchmarkSchedulerAt|BenchmarkSchedulerReschedule|BenchmarkSchedulerCancelChurn' -benchmem -count 1 ./internal/sim/)
echo "$simraw"
raw="$raw
$simraw"

{
    echo '{'
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"cpus\": $(getconf _NPROCESSORS_ONLN),"
    echo '  "note": "Parallel speedup is bounded by the cpus figure above: on a single-CPU host workers=4 measures pool overhead rather than speedup. Experiment output is byte-identical at every worker count.",'
    echo '  "benchmarks": ['
    echo "$raw" | awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            nsop = ""; bop = ""; allocs = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") nsop = $i
                if ($(i+1) == "B/op") bop = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, bop, allocs)
        }
        END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
    '
    echo '  ]'
    echo '}'
} > "$out"

echo "wrote $out"

# Wire codec: the zero-allocation serving fast paths (append-based
# encode, union decode, pooled writer, resyncing reader).
wout=BENCH_wire.json
wpattern='BenchmarkEncode|BenchmarkDecode|BenchmarkWritePacket|BenchmarkReadPacket'
wraw=$(go test -run '^$' -bench "$wpattern" -benchmem -count 1 ./internal/wire/)
echo "$wraw"

{
    echo '{'
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"cpus\": $(getconf _NPROCESSORS_ONLN),"
    echo '  "note": "Serving-path codec fast paths. allocs_per_op must stay 0 (enforced by TestServingFastPathsZeroAlloc in the no-race pass of scripts/check.sh).",'
    echo '  "benchmarks": ['
    echo "$wraw" | awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            nsop = ""; bop = ""; allocs = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") nsop = $i
                if ($(i+1) == "B/op") bop = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, bop, allocs)
        }
        END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
    '
    echo '  ]'
    echo '}'
} > "$wout"

echo "wrote $wout"

# Checkpoint codec: the binary CKPT encode/decode fast paths next to
# their JSON baselines. The binary rows must stay well ahead of the JSON
# ones and at 0 allocs/op (enforced by the store alloc budgets in the
# no-race pass of scripts/check.sh).
sout=BENCH_store.json
spattern='BenchmarkCheckpointEncode|BenchmarkCheckpointDecode'
sraw=$(go test -run '^$' -bench "$spattern" -benchmem -count 1 ./internal/store/)
echo "$sraw"

{
    echo '{'
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"cpus\": $(getconf _NPROCESSORS_ONLN),"
    echo '  "note": "CKPT checkpoint codec vs the legacy JSON encoding, one fleet-scale tenant blob per op. The binary rows are the serving default; allocs_per_op must stay 0 on them (TestCheckpointCodecAllocBudget, TestMultiSaverAllocBudget).",'
    echo '  "benchmarks": ['
    echo "$sraw" | awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            nsop = ""; bop = ""; allocs = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") nsop = $i
                if ($(i+1) == "B/op") bop = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, bop, allocs)
        }
        END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
    '
    echo '  ]'
    echo '}'
} > "$sout"

echo "wrote $sout"

# Control plane: the work queue's drain throughput (dispatch + permits
# + Done callbacks over a worker pool) and the event bus's publish fan-
# out. Neither sits on the per-event serving path — jobs and events are
# per checkpoint wave — so these bound how fine-grained control work
# can get before the queue itself shows up in a drain.
qout=BENCH_queue.json
qpattern='BenchmarkQueueThroughput|BenchmarkBusPublish'
qraw=$(go test -run '^$' -bench "$qpattern" -benchmem -count 1 ./internal/queue/ ./internal/notify/)
echo "$qraw"

{
    echo '{'
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"cpus\": $(getconf _NPROCESSORS_ONLN),"
    echo '  "note": "Control-plane fabric: one trivial job enqueued+drained per op at the fleet worker count (queue), and one event published per op with a single drained listener (bus). Dispatch order and digests are identical at every worker count; only wall-clock throughput moves.",'
    echo '  "benchmarks": ['
    echo "$qraw" | awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            nsop = ""; bop = ""; allocs = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") nsop = $i
                if ($(i+1) == "B/op") bop = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, bop, allocs)
        }
        END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
    '
    echo '  ]'
    echo '}'
} > "$qout"

echo "wrote $qout"

# Fleet throughput matrix: 1000 households through the sharded runtime
# at GOMAXPROCS×shards = 1/2/4/8. Each row records the parallelism it
# actually ran with (cpus = GOMAXPROCS, which may exceed host_cpus on
# small hosts — the digest is identical either way, only the wall-clock
# numbers move). The deterministic soak outcome goes to stdout; the
# wall-clock numbers land in the JSON rows. A final row re-runs the
# 8-shard soak with the control queue disabled (inline writes): the
# queue row's throughput staying at or above it is the no-regression
# evidence for the control-plane refactor.
fout=BENCH_fleet.json
rows=()
for n in 1 2 4 8; do
    row="/tmp/coreda-bench-fleet-$n.json"
    GOMAXPROCS=$n go run ./cmd/coreda-bench -households 1000 -fleet-shards "$n" -fleet-json "$row" fleet
    rows+=("$row")
done
row="/tmp/coreda-bench-fleet-inline.json"
GOMAXPROCS=8 go run ./cmd/coreda-bench -households 1000 -fleet-shards 8 -fleet-control inline -fleet-json "$row" fleet
rows+=("$row")

# Idle-advance rows: the clock-pump cost over a 10k-household population
# with 1% mid-session, under the due-time index and the pre-index sweep.
# The indexed row's ticks_per_sec must dwarf the sweep row's — that gap
# is the tentpole number (BenchmarkAdvanceIdle measures the same path at
# the shard level with exact allocs/op).
idle_rows=()
for mode in indexed sweep; do
    row="/tmp/coreda-bench-fleetidle-$mode.json"
    go run ./cmd/coreda-bench -households 10000 -idle-active 100 -idle-ticks 2000 -fleet-shards 1 -fleet-advance "$mode" -fleet-json "$row" fleetidle
    idle_rows+=("$row")
done

# The same comparison at the shard level (no fleet goroutines), where
# allocs/op is exact: BenchmarkAdvanceIdle must report 0 allocs/op.
araw=$(go test -run '^$' -bench 'BenchmarkAdvanceIdle' -benchmem -count 1 ./internal/fleet/)
echo "$araw"

{
    echo '{'
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"host_cpus\": $(getconf _NPROCESSORS_ONLN),"
    echo '  "note": "GOMAXPROCS x shards matrix over the same 1000-household soak, plus an inline-control row at 8 shards. Digest and stats are identical on every row; only elapsed_sec/events_per_sec (and the control/job_retries bookkeeping) may differ. idle_rows measure the clock pump over a mostly-idle 10k-household population: indexed (due-time tenant index) vs sweep (pre-index full walk); their deterministic stdout is identical, only ticks_per_sec differs.",'
    echo '  "rows": ['
    for i in "${!rows[@]}"; do
        sep=","
        [[ $i -eq $((${#rows[@]} - 1)) ]] && sep=""
        sed "\$s/\$/$sep/" "${rows[$i]}"
    done
    echo '  ],'
    echo '  "idle_rows": ['
    for i in "${!idle_rows[@]}"; do
        sep=","
        [[ $i -eq $((${#idle_rows[@]} - 1)) ]] && sep=""
        sed "\$s/\$/$sep/" "${idle_rows[$i]}"
    done
    echo '  ],'
    echo '  "idle_benchmarks": ['
    echo "$araw" | awk '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            nsop = ""; bop = ""; allocs = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op") nsop = $i
                if ($(i+1) == "B/op") bop = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, bop, allocs)
        }
        END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
    '
    echo '  ]'
    echo '}'
} > "$fout"
rm -f /tmp/coreda-bench-fleet-{1,2,4,8}.json /tmp/coreda-bench-fleet-inline.json /tmp/coreda-bench-fleetidle-{indexed,sweep}.json

echo "wrote $fout"

# Cluster throughput: the same soak executed by 1, 2 and 3 cooperating
# worker processes (checkpoint replication at K=2). Every row's digest
# is gated against the single-process baseline inside the bench itself;
# the events_per_sec column is what distribution buys (or costs — the
# replication barrier is per-round) on this host.
cout=BENCH_cluster.json
go run ./cmd/coreda-bench -cluster-households 64 -cluster-sessions 6 -cluster-json "$cout" cluster
echo "wrote $cout"
