// Personalization demonstrates the paper's first design criterion: "keep
// the dementia patients do ADLs as they did before". Two users make tea in
// different personal orders; each gets a policy learned from their own
// behaviour, and the prompts they receive differ accordingly — unlike the
// pre-planned prior systems the paper criticizes.
package main

import (
	"fmt"
	"log"

	"coreda"
)

func main() {
	activity := coreda.TeaMaking()
	canonical := activity.CanonicalRoutine()

	// Mr. Tanaka warms the kettle with hot water before adding leaves;
	// Mrs. Sato follows the canonical order.
	tanakaRoutine := coreda.Routine{canonical[1], canonical[0], canonical[2], canonical[3]}
	satoRoutine := canonical

	users := []struct {
		name    string
		routine coreda.Routine
	}{
		{"Mr. Tanaka", tanakaRoutine},
		{"Mrs. Sato", satoRoutine},
	}

	for _, u := range users {
		sys, err := coreda.NewSystem(coreda.SystemConfig{
			Activity: activity,
			UserName: u.name,
			Seed:     42,
		}, coreda.NewScheduler())
		if err != nil {
			log.Fatal(err)
		}
		episodes := make([][]coreda.StepID, 120)
		for i := range episodes {
			episodes[i] = u.routine
		}
		if err := sys.TrainEpisodes(episodes); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s (precision %.0f%% on their own routine):\n",
			u.name, sys.Planner().Evaluate([][]coreda.StepID{u.routine})*100)
		prev := coreda.StepIdle
		for i := 0; i+1 < len(u.routine); i++ {
			step, _ := activity.StepByID(u.routine[i])
			prompt, ok := sys.Planner().Predict(prev, u.routine[i])
			if ok {
				tool, _ := activity.Tool(prompt.Tool)
				fmt.Printf("  after %-30q -> %q\n", step.Name, tool.Name)
			}
			prev = u.routine[i]
		}
		fmt.Println()
	}

	fmt.Println("Same activity, same tools, different learned guidance —")
	fmt.Println("each user is reminded of THEIR next step, not a fixed plan's.")
}
