// Multiroutine demonstrates the paper's future-work item 1: "for some
// ADLs, such as dressing, one user may have multiple routines to complete
// it. Therefore, the multi-routine are necessary for even only one user."
//
// Mrs. Sato dresses in two orders depending on the day. A single
// pair-state planner cannot represent both (the pair <shirt, trousers>
// occurs in both routines with different successors); the multi-routine
// planner discovers the two routines from her history, identifies which
// one is active from the first steps of a session, and prompts correctly
// for both.
package main

import (
	"fmt"
	"log"

	"coreda"
)

func main() {
	activity := coreda.Dressing()
	c := activity.CanonicalRoutine() // shirt trousers socks shoes
	weekday := c
	sunday := coreda.Routine{c[2], c[0], c[1], c[3]} // socks first on Sundays

	// Her recorded history: a mix of both routines.
	rng := coreda.RNG(9, "history")
	var history [][]coreda.StepID
	for i := 0; i < 200; i++ {
		if rng.Intn(7) == 0 {
			history = append(history, sunday)
		} else {
			history = append(history, weekday)
		}
	}

	// Step 1: discover the distinct routines in the history.
	routines := coreda.DiscoverRoutines(history, 5)
	fmt.Printf("discovered %d routines in %d recorded sessions:\n", len(routines), len(history))
	for i, r := range routines {
		fmt.Printf("  routine %d: %s\n", i+1, describe(activity, r))
	}

	// Step 2: train one planner per routine.
	multi, err := coreda.NewMultiPlanner(activity, coreda.PlannerConfig{}, coreda.RNG(9, "multi"), routines)
	if err != nil {
		log.Fatal(err)
	}
	for _, ep := range history {
		if err := multi.TrainEpisode(ep); err != nil {
			log.Fatal(err)
		}
	}

	// A single planner for comparison.
	single, err := coreda.NewPlanner(activity, coreda.PlannerConfig{}, coreda.RNG(9, "single"))
	if err != nil {
		log.Fatal(err)
	}
	for _, ep := range history {
		if err := single.TrainEpisode(ep); err != nil {
			log.Fatal(err)
		}
	}

	eval := [][]coreda.StepID{weekday, sunday}
	fmt.Printf("\nprediction precision over both routines:\n")
	fmt.Printf("  single planner: %.1f%%\n", single.Evaluate(eval)*100)
	fmt.Printf("  multi-routine:  %.1f%%\n", multi.Evaluate(eval)*100)

	// Step 3: online identification. After seeing her first two steps,
	// the multi-planner knows which day it is.
	fmt.Println("\nonline routine identification:")
	for _, scenario := range []struct {
		name     string
		observed []coreda.StepID
	}{
		{"weekday (shirt first)", []coreda.StepID{weekday[0], weekday[1]}},
		{"sunday (socks first)", []coreda.StepID{sunday[0], sunday[1]}},
	} {
		idx, matched := multi.Identify(scenario.observed)
		prev, cur := scenario.observed[0], scenario.observed[1]
		prompt, ok := multi.Predict(scenario.observed, prev, cur)
		if !ok {
			log.Fatalf("%s: no prediction", scenario.name)
		}
		tool, _ := activity.Tool(prompt.Tool)
		fmt.Printf("  %-24s -> routine %d (matched %d steps), next prompt: %q\n",
			scenario.name, idx+1, matched, tool.Name)
	}
}

func describe(a *coreda.Activity, r coreda.Routine) string {
	out := ""
	for i, id := range r {
		if s, ok := a.StepByID(id); ok {
			if i > 0 {
				out += " -> "
			}
			out += s.Name
		}
	}
	return out
}
