// Baselines compares CoReDA's learned guidance against the related-work
// approaches the paper positions itself against: a fixed pre-planned
// routine, a Boger-style MDP planner, and a first-order Markov model —
// on a personalized user and on a user with two alternating routines.
//
// Run it to regenerate the comparison table; cmd/coreda-bench prints the
// same data as part of the full evaluation.
package main

import (
	"fmt"
	"log"

	"coreda/internal/experiments"
)

func main() {
	rows, err := experiments.RunBaselineComparison(1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderComparison(rows))
	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("  - the pre-planned baselines score 100% only on users who follow the")
	fmt.Println("    canonical plan; this user reorders two steps, so they mis-prompt;")
	fmt.Println("  - CoReDA learns whatever order the user actually follows;")
	fmt.Println("  - on a user with TWO routines, the single pair-state planner and the")
	fmt.Println("    first-order Markov model hit representational ceilings; the")
	fmt.Println("    multi-routine extension (paper future-work item 1) resolves them.")
}
