// Teamaking re-enacts Figure 1 of the paper as a full closed-loop
// simulation: simulated PAVENET nodes on the tea tools, a lossy radio, a
// persona playing Mr. Tanaka (who sometimes grabs the wrong tool and
// sometimes freezes), and the complete sensing → planning → reminding
// loop. First the system silently learns his routine, then it assists.
package main

import (
	"fmt"
	"log"
	"time"

	"coreda"
)

func main() {
	activity := coreda.TeaMaking()
	tanaka := coreda.NewPersona("Mr. Tanaka", 0.55)
	if err := tanaka.SetRoutine(activity, activity.CanonicalRoutine()); err != nil {
		log.Fatal(err)
	}

	sim, err := coreda.NewSimulation(coreda.SimulationConfig{
		Activity: activity,
		Persona:  tanaka,
		Seed:     7,
		// Deployment hardening beyond the paper: remind before the first
		// step (the paper's Table 4 cannot) and recover when a sensor
		// misses a step (Table 3: detection is ~80-100% per step).
		System: coreda.SystemConfig{
			InferSkips: true,
			Planner:    coreda.PlannerConfig{LearnInitialPrompt: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: silent learning of Mr. Tanaka's personal routine.
	completed, err := sim.RunTraining(60, 5*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learning phase: %d/60 sessions fully observed through the sensor network\n", completed)
	fmt.Printf("routine precision: %.0f%%\n\n",
		sim.System.Planner().Evaluate([][]coreda.StepID{activity.CanonicalRoutine()})*100)

	// Phase 2: assist Mr. Tanaka through three more tea sessions. His
	// dementia-related errors now trigger reminders, as in Figure 1.
	assistStart := sim.Sched.Now()
	for i := 0; i < 3; i++ {
		res, err := sim.RunSession(coreda.ModeAssist, 10*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("assist session %d: completed=%v, %d reminders, %d praises\n",
			i+1, res.Completed, res.Reminders, res.Praises)
	}

	fmt.Println("\nFigure 1-style timeline of the assisted sessions:")
	for _, e := range sim.Timeline.Entries() {
		if e.At < assistStart {
			continue
		}
		fmt.Printf("%8.1fs  %-10s  %s\n", e.At.Seconds(), e.Actor, e.Text)
	}
}
