// Newadl demonstrates the paper's fourth design criterion: "easily
// generalize to other ADLs". A brand-new activity — taking evening
// medication with a cup of tea — is declared as data (tools + steps);
// every subsystem (sensing, planning, reminding, the simulated sensor
// network) works on it without any code changes.
package main

import (
	"fmt"
	"log"
	"time"

	"coreda"
)

func main() {
	// Declare a new activity from scratch: three steps, three tools.
	// "What we need do is only attach one PAVENET to a tool, and
	// configure its uid as the tool ID." (section 2.1)
	const (
		toolRadio  coreda.ToolID = 61
		toolPlants coreda.ToolID = 62
		toolCurt   coreda.ToolID = 63
	)
	eveningRoutine := &coreda.Activity{
		Name: "evening-routine",
		Steps: []coreda.Step{
			{Name: "Turn off the radio", Tool: toolRadio, TypicalDuration: 1500 * time.Millisecond, Intensity: 1.6},
			{Name: "Water the plants", Tool: toolPlants, TypicalDuration: 5 * time.Second, Intensity: 2.0},
			{Name: "Close the curtains", Tool: toolCurt, TypicalDuration: 3 * time.Second, Intensity: 1.8},
		},
		Tools: map[coreda.ToolID]coreda.Tool{
			toolRadio:  {ID: toolRadio, Name: "radio", Sensor: coreda.SensorAccelerometer, Picture: "radio.png"},
			toolPlants: {ID: toolPlants, Name: "watering can", Sensor: coreda.SensorAccelerometer, Picture: "watering-can.png"},
			toolCurt:   {ID: toolCurt, Name: "curtain cord", Sensor: coreda.SensorAccelerometer, Picture: "curtains.png"},
		},
	}
	if err := eveningRoutine.Validate(); err != nil {
		log.Fatal(err)
	}

	user := coreda.NewPersona("Mrs. Abe", 0.5)
	if err := user.SetRoutine(eveningRoutine, eveningRoutine.CanonicalRoutine()); err != nil {
		log.Fatal(err)
	}

	// The full closed loop — simulated nodes, radio, learning, reminding
	// — assembles for the new activity exactly as for the built-in ones.
	sim, err := coreda.NewSimulation(coreda.SimulationConfig{
		Activity: eveningRoutine,
		Persona:  user,
		Seed:     8,
		// The initial-prompt extension lets the system remind the FIRST
		// step too (the paper's system cannot; see DESIGN.md).
		System: coreda.SystemConfig{
			Planner: coreda.PlannerConfig{LearnInitialPrompt: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	completed, err := sim.RunTraining(50, 5*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	precision := sim.System.Planner().Evaluate([][]coreda.StepID{eveningRoutine.CanonicalRoutine()})
	fmt.Printf("new ADL %q: %d/50 training sessions observed, precision %.0f%%\n",
		eveningRoutine.Name, completed, precision*100)

	res, err := sim.RunSession(coreda.ModeAssist, 10*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assisted session: completed=%v, %d reminders, %d praises\n",
		res.Completed, res.Reminders, res.Praises)

	// The hand-washing ADL from the standard library works the same way
	// and matches the system Boger et al. built specifically for it.
	fmt.Println("\nbuilt-in generalization examples:", coreda.HandWashing().Name+",",
		coreda.Medication().Name+",", coreda.Dressing().Name)
}
