// Quickstart: build a CoReDA system for tea-making, teach it a routine
// from recorded step sequences, and ask it what to remind next.
package main

import (
	"fmt"
	"log"

	"coreda"
)

func main() {
	activity := coreda.TeaMaking()
	sched := coreda.NewScheduler()

	sys, err := coreda.NewSystem(coreda.SystemConfig{
		Activity: activity,
		UserName: "Mr. Tanaka",
		Seed:     1,
	}, sched)
	if err != nil {
		log.Fatal(err)
	}

	// Train from complete performances of the activity — the paper's
	// unit of training data. Here Mr. Tanaka always makes tea in the
	// canonical order.
	routine := activity.CanonicalRoutine()
	episodes := make([][]coreda.StepID, 120)
	for i := range episodes {
		episodes[i] = routine
	}
	if err := sys.TrainEpisodes(episodes); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d tea-making sessions; routine precision %.0f%%\n\n",
		len(episodes), sys.Planner().Evaluate([][]coreda.StepID{routine})*100)

	// Ask the learned policy what to prompt at each point of the routine.
	prev := coreda.StepIdle
	for i := 0; i+1 < len(routine); i++ {
		cur, _ := activity.StepByID(routine[i])
		prompt, ok := sys.Planner().Predict(prev, routine[i])
		if !ok {
			fmt.Printf("after %q: no prediction\n", cur.Name)
			continue
		}
		tool, _ := activity.Tool(prompt.Tool)
		fmt.Printf("after %-30q remind: use the %s (%s reminder)\n", cur.Name, tool.Name, prompt.Level)
		prev = routine[i]
	}
}
