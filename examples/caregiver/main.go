// Caregiver demonstrates the reporting loop that motivates the paper:
// the system quietly logs every session it assists, and the caregiver
// reads a summary instead of supervising every cup of tea — "caregivers'
// burden will be significantly reduced".
//
// It simulates two months of tea-making for a user whose dementia
// worsens halfway through, then renders the caregiver report: completion
// rate, reminder load per step, and the assistance trend that surfaces
// the deterioration.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"coreda"
	"coreda/internal/report"
	"coreda/internal/trace"
)

func main() {
	activity := coreda.TeaMaking()
	user := coreda.NewPersona("Mrs. Watanabe", 0.25)
	user.ComplyMinimal, user.ComplySpecific = 1, 1
	if err := user.SetRoutine(activity, activity.CanonicalRoutine()); err != nil {
		log.Fatal(err)
	}

	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	cfg := coreda.SimulationConfig{
		Activity: activity,
		Persona:  user,
		Seed:     5,
		System: coreda.SystemConfig{
			InferSkips: true,
			Planner:    coreda.PlannerConfig{LearnInitialPrompt: true},
		},
	}
	var now func() time.Duration
	trace.Attach(rec, &cfg.System, activity.Name, user.Name, func() time.Duration {
		if now == nil {
			return 0
		}
		return now()
	})
	sim, err := coreda.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	now = sim.Sched.Now

	// The routine is learned once, quietly.
	if _, err := sim.RunTraining(50, 5*time.Minute); err != nil {
		log.Fatal(err)
	}

	// A month of assisted sessions; halfway through, her dementia
	// worsens and errors become more frequent.
	for day := 0; day < 30; day++ {
		if day == 15 {
			worse := coreda.NewPersona(user.Name, 0.65)
			user.FreezeProb = worse.FreezeProb
			user.WrongToolProb = worse.WrongToolProb
		}
		if _, err := sim.RunSession(coreda.ModeAssist, 10*time.Minute); err != nil {
			log.Fatal(err)
		}
	}
	if err := rec.Err(); err != nil {
		log.Fatal(err)
	}

	records, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	// Report over the assisted month only (drop the 50 learning sessions).
	assisted := records
	seen := 0
	for i, r := range records {
		if r.Kind == trace.KindSessionStart {
			seen++
			if seen == 51 {
				assisted = records[i:]
				break
			}
		}
	}

	toolNames := map[uint16]string{}
	for id, tool := range activity.Tools {
		toolNames[uint16(id)] = tool.Name
	}
	rep := report.Build(user.Name, assisted, map[string]int{activity.Name: activity.StepCount()})
	fmt.Print(rep.Render(toolNames))
	fmt.Println("\nThe 'declining' trend is the signal a caregiver acts on: the system")
	fmt.Println("is absorbing more of the prompting work as the dementia progresses.")
}
