package coreda_test

import (
	"fmt"
	"log"

	"coreda"
)

// Example shows the minimal path: build a system, teach it a routine from
// recorded performances, ask what to remind next.
func Example() {
	activity := coreda.TeaMaking()
	sys, err := coreda.NewSystem(coreda.SystemConfig{
		Activity: activity,
		UserName: "Mr. Tanaka",
	}, coreda.NewScheduler())
	if err != nil {
		log.Fatal(err)
	}

	routine := activity.CanonicalRoutine()
	episodes := make([][]coreda.StepID, 120)
	for i := range episodes {
		episodes[i] = routine
	}
	if err := sys.TrainEpisodes(episodes); err != nil {
		log.Fatal(err)
	}

	prompt, _ := sys.Planner().Predict(coreda.StepIdle, routine[0])
	tool, _ := activity.Tool(prompt.Tool)
	fmt.Printf("after the tea-box, remind: use the %s (%s)\n", tool.Name, prompt.Level)
	// Output: after the tea-box, remind: use the electronic pot (minimal)
}

// ExampleNewSimulation runs a fully closed loop — simulated sensor nodes,
// radio, persona — for a few silent learning sessions.
func ExampleNewSimulation() {
	activity := coreda.TeaMaking()
	user := coreda.NewPersona("Mr. Tanaka", 0)
	if err := user.SetRoutine(activity, activity.CanonicalRoutine()); err != nil {
		log.Fatal(err)
	}
	sim, err := coreda.NewSimulation(coreda.SimulationConfig{
		Activity: activity,
		Persona:  user,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	completed, err := sim.RunTraining(40, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d sessions fully observed through the sensor network\n", completed)
	precision := sim.System.Planner().Evaluate([][]coreda.StepID{activity.CanonicalRoutine()})
	fmt.Printf("learned-routine precision: %.0f%%\n", precision*100)
	// Output:
	// 28 sessions fully observed through the sensor network
	// learned-routine precision: 100%
}

// ExampleHub routes the tools of several activities through one gateway.
func ExampleHub() {
	sched := coreda.NewScheduler()
	hub := coreda.NewHub(sched)
	if _, err := hub.Add(coreda.SystemConfig{Activity: coreda.TeaMaking()}); err != nil {
		log.Fatal(err)
	}
	if _, err := hub.Add(coreda.SystemConfig{Activity: coreda.Medication()}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("activities served:", len(hub.Systems()))
	// Output: activities served: 2
}
