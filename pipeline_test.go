package coreda_test

// pipeline_test exercises the full product loop a deployment would run:
// live closed-loop sessions are recorded to a trace, the trace feeds a
// caregiver report, and the recorded history retrains a fresh policy that
// matches the original.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"coreda"
	"coreda/internal/report"
	"coreda/internal/trace"
)

func TestFullPipelineRecordReportRetrain(t *testing.T) {
	activity := coreda.TeaMaking()
	user := coreda.NewPersona("Mr. Tanaka", 0.4)
	user.ComplyMinimal, user.ComplySpecific = 1, 1
	if err := user.SetRoutine(activity, activity.CanonicalRoutine()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	cfg := coreda.SimulationConfig{Activity: activity, Persona: user, Seed: 21}
	var now func() time.Duration
	trace.Attach(rec, &cfg.System, activity.Name, user.Name, func() time.Duration {
		if now == nil {
			return 0
		}
		return now()
	})
	sim, err := coreda.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now = sim.Sched.Now

	// Phase 1: learn silently; phase 2: assist with errors.
	if _, err := sim.RunTraining(50, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	assisted := 0
	for i := 0; i < 10; i++ {
		res, err := sim.RunSession(coreda.ModeAssist, 10*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed {
			assisted++
		}
	}
	if assisted == 0 {
		t.Fatal("no assisted sessions completed")
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}

	// The trace is readable and contains the whole history.
	records, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := trace.Summarize(records)
	if sum.Sessions != 60 {
		t.Errorf("recorded sessions = %d, want 60", sum.Sessions)
	}
	if sum.Steps == 0 {
		t.Fatal("no steps recorded")
	}

	// The caregiver report aggregates it.
	stepCounts := map[string]int{activity.Name: activity.StepCount()}
	rep := report.Build(user.Name, records, stepCounts)
	if len(rep.Sessions) != 60 {
		t.Errorf("report sessions = %d", len(rep.Sessions))
	}
	if rep.CompletionRate <= 0 {
		t.Error("zero completion rate")
	}
	out := rep.Render(nil)
	if !strings.Contains(out, "Mr. Tanaka") {
		t.Errorf("report render:\n%s", out)
	}

	// The recorded complete episodes retrain a fresh system to the same
	// routine knowledge.
	var complete [][]coreda.StepID
	for _, ep := range trace.Episodes(records)[activity.Name] {
		if len(ep) == activity.StepCount() {
			complete = append(complete, ep)
		}
	}
	if len(complete) < 10 {
		t.Fatalf("only %d complete recorded episodes", len(complete))
	}
	fresh, err := coreda.NewSystem(coreda.SystemConfig{Activity: activity, UserName: user.Name}, coreda.NewScheduler())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150/len(complete)+1; i++ {
		if err := fresh.TrainEpisodes(complete); err != nil {
			t.Fatal(err)
		}
	}
	if got := fresh.Planner().Evaluate([][]coreda.StepID{activity.CanonicalRoutine()}); got != 1 {
		t.Errorf("retrained precision = %v", got)
	}
}
