# CoReDA build and evaluation targets.

GO ?= go

.PHONY: all build test race vet vet-json lint check bench experiments examples fuzz clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint = the stock vet plus CoReDA's own invariant analyzers
# (determinism, reward constants, single-threaded discipline, dropped
# errors, map-iteration order, shard affinity, locks held across
# blocking calls, hot-path escapes, ignore-directive hygiene); see
# internal/analysis.
lint: vet
	$(GO) run ./cmd/coreda-vet ./...

# vet-json emits the full suite's diagnostics as vet-report.json for
# editor and CI consumption. The target fails when there are findings;
# the report is written either way.
vet-json:
	$(GO) run ./cmd/coreda-vet -json ./... > vet-report.json

# check is the full local gate, same set scripts/check.sh runs in CI.
check: build test lint race

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/coreda-bench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/teamaking
	$(GO) run ./examples/personalization
	$(GO) run ./examples/newadl
	$(GO) run ./examples/multiroutine
	$(GO) run ./examples/caregiver
	$(GO) run ./examples/baselines

fuzz:
	$(GO) test ./internal/wire -fuzz FuzzDecode -fuzztime 30s

clean:
	$(GO) clean -testcache
	rm -f coreda-sim coreda-train coreda-server coreda-node coreda-bench coreda-report vet-report.json
