package coreda

import (
	"strings"
	"testing"
	"time"

	"coreda/internal/adl"
	"coreda/internal/sensing"
	"coreda/internal/wire"
)

func newSim(t *testing.T, severity float64, seed int64, sys SystemConfig) *Simulation {
	t.Helper()
	activity := TeaMaking()
	p := NewPersona("Mr. Tanaka", severity)
	if err := p.SetRoutine(activity, activity.CanonicalRoutine()); err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulation(SimulationConfig{
		Activity: activity,
		Persona:  p,
		Seed:     seed,
		System:   sys,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSimulationValidation(t *testing.T) {
	if _, err := NewSimulation(SimulationConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	p := NewPersona("x", 0)
	if _, err := NewSimulation(SimulationConfig{Activity: TeaMaking(), Persona: p}); err == nil {
		t.Error("persona without routine accepted")
	}
}

func TestClosedLoopTrainingSessionCompletes(t *testing.T) {
	s := newSim(t, 0, 1, SystemConfig{})
	res, err := s.RunSession(ModeLearn, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("training session did not complete: %+v\n%s", res, s.Timeline)
	}
	if res.Reminders != 0 {
		t.Errorf("learn mode issued %d reminders", res.Reminders)
	}
	if res.Duration <= 0 || res.Duration > 5*time.Minute {
		t.Errorf("duration = %v", res.Duration)
	}
}

func TestClosedLoopTrainingConvergesThroughRealSensors(t *testing.T) {
	s := newSim(t, 0.3, 2, SystemConfig{})
	completed, err := s.RunTraining(80, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Detection is deliberately imperfect (Table 3: the pot is extracted
	// at ~80 %, the tea-cup at ~90 %), so a session is fully observed
	// with probability ~0.7; learning must still converge from the
	// partially observed episodes.
	if completed < 40 {
		t.Fatalf("only %d/80 training sessions completed", completed)
	}
	routine := TeaMaking().CanonicalRoutine()
	if got := s.System.Planner().Evaluate([][]StepID{routine}); got < 0.99 {
		t.Errorf("precision after closed-loop training = %v", got)
	}
}

// runAssistFlippingAfterFirstStep runs one assist session, calling flip
// once the actor has performed the first step. The paper's system cannot
// predict (and therefore cannot correct) the first step of an ADL, so
// error-injection tests start erring from the second step.
func runAssistFlippingAfterFirstStep(t *testing.T, s *Simulation, flip func()) {
	t.Helper()
	s.completed = false
	s.System.StartSession(ModeAssist)
	if err := s.Actor.Begin(); err != nil {
		t.Fatal(err)
	}
	flipped := false
	deadline := s.Sched.Now() + 10*time.Minute
	for !s.completed && s.Sched.Now() < deadline {
		if !flipped && s.Actor.Position() >= 1 {
			flip()
			flipped = true
		}
		if !s.Sched.Step() {
			break
		}
	}
	if s.System.Active() {
		s.System.EndSession()
	}
	if !s.completed {
		t.Fatalf("assist session did not complete\n%s", s.Timeline)
	}
}

func TestAssistSessionRecoversWrongTools(t *testing.T) {
	s := newSim(t, 0, 3, SystemConfig{})
	if _, err := s.RunTraining(80, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	p := s.cfg.Persona
	p.FreezeProb = 0
	p.ComplyMinimal = 1
	p.ComplySpecific = 1

	runAssistFlippingAfterFirstStep(t, s, func() { p.WrongToolProb = 1 })

	st := s.System.Stats()
	if st.WrongToolEvents == 0 || st.Reminding.Reminders == 0 {
		t.Errorf("expected wrong-tool reminders, got %+v", st)
	}
	if st.Reminding.Praises == 0 {
		t.Error("recovering from a reminder should earn praise")
	}
}

func TestAssistSessionUnfreezesUser(t *testing.T) {
	s := newSim(t, 0, 4, SystemConfig{Sensing: sensing.Config{IdleFloor: 8 * time.Second}})
	if _, err := s.RunTraining(80, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	p := s.cfg.Persona
	p.WrongToolProb = 0
	p.ComplyMinimal = 1
	p.ComplySpecific = 1

	// Freeze from the second step on (the paper's system cannot prompt
	// before the first step).
	runAssistFlippingAfterFirstStep(t, s, func() { p.FreezeProb = 1 })
	if s.System.Stats().Reminding.Reminders == 0 {
		t.Error("no idle reminders delivered")
	}
}

func TestAssistRemindersBlinkRealLEDs(t *testing.T) {
	s := newSim(t, 0, 5, SystemConfig{})
	if _, err := s.RunTraining(80, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	p := s.cfg.Persona
	p.FreezeProb = 0
	p.ComplyMinimal = 1
	p.ComplySpecific = 1
	runAssistFlippingAfterFirstStep(t, s, func() { p.WrongToolProb = 1 })
	green, red := 0, 0
	for _, tool := range TeaMaking().StepIDs() {
		n, ok := s.Node(adl.ToolOf(tool))
		if !ok {
			t.Fatalf("node for tool %d missing", tool)
		}
		green += n.LED(wire.LEDGreen).TotalBlinks
		red += n.LED(wire.LEDRed).TotalBlinks
	}
	if green == 0 {
		t.Error("no green LED blinks reached the nodes")
	}
	if red == 0 {
		t.Error("no red LED blinks reached the nodes (wrong-tool channel)")
	}
}

func TestTimelineRecordsFigure1StyleEntries(t *testing.T) {
	s := newSim(t, 0, 6, SystemConfig{})
	if _, err := s.RunTraining(5, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	out := s.Timeline.String()
	for _, want := range []string{"session start", "uses tea-box", "uses electronic pot", "completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestSimulationDeterminism(t *testing.T) {
	run := func() string {
		s := newSim(t, 0.4, 42, SystemConfig{})
		if _, err := s.RunTraining(10, 5*time.Minute); err != nil {
			t.Fatal(err)
		}
		return s.Timeline.String()
	}
	if run() != run() {
		t.Error("identical seeds produced different timelines")
	}
}

func TestEEPROMLogsFillDuringSessions(t *testing.T) {
	s := newSim(t, 0, 7, SystemConfig{})
	if _, err := s.RunTraining(3, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	n, _ := s.Node(adl.ToolTeaBox)
	if len(n.LogEntries()) == 0 {
		t.Error("tea-box node EEPROM log empty after sessions")
	}
}
