package coreda

import (
	"testing"
	"time"

	"coreda/internal/adl"
	"coreda/internal/chaos"
	"coreda/internal/sensornet"
	"coreda/internal/sim"
)

func TestSetToolOnlineTransitions(t *testing.T) {
	var alerts []CaregiverAlert
	sys, _ := newDirectSystem(t, SystemConfig{
		OnAlert: func(a CaregiverAlert) { alerts = append(alerts, a) },
	})

	if sys.Degraded() {
		t.Fatal("fresh system already degraded")
	}
	sys.SetToolOnline(adl.ToolKettle, true) // already online: no transition
	if len(alerts) != 0 {
		t.Fatalf("redundant online report alerted: %+v", alerts)
	}

	sys.SetToolOnline(adl.ToolKettle, false)
	sys.SetToolOnline(adl.ToolKettle, false) // repeat: ignored
	if !sys.Degraded() {
		t.Fatal("system not degraded after offline report")
	}
	if got := sys.OfflineTools(); len(got) != 1 || got[0] != adl.ToolKettle {
		t.Errorf("OfflineTools = %v", got)
	}
	if len(alerts) != 1 || alerts[0].Recovered || alerts[0].Tool != adl.ToolKettle {
		t.Fatalf("offline alerts = %+v", alerts)
	}

	sys.SetToolOnline(adl.ToolKettle, true)
	if sys.Degraded() {
		t.Error("system degraded after recovery")
	}
	if len(alerts) != 2 || !alerts[1].Recovered {
		t.Fatalf("recovery alerts = %+v", alerts)
	}
	st := sys.Stats()
	if st.DegradedEvents != 1 || st.Recoveries != 1 {
		t.Errorf("DegradedEvents = %d, Recoveries = %d", st.DegradedEvents, st.Recoveries)
	}
	if st.Reminding.Alerts != 2 {
		t.Errorf("Reminding.Alerts = %d", st.Reminding.Alerts)
	}
}

func TestDegradedReminderEscalatesToSpecific(t *testing.T) {
	var reminders []Reminder
	sys, f := trainedSystem(t, SystemConfig{
		Sensing:    sensingConfig(10 * time.Second),
		OnReminder: func(r Reminder) { reminders = append(reminders, r) },
	})

	sys.SetToolOnline(adl.ToolKettle, false)
	sys.StartSession(ModeAssist)
	f.use(adl.ToolTeaBox, 2*time.Second)
	f.use(adl.ToolPot, 2*time.Second)
	// The user freezes before the kettle step — whose green LED is dead.
	f.sched.RunUntil(f.sched.Now() + 15*time.Second)

	if len(reminders) == 0 {
		t.Fatal("no idle reminder")
	}
	r := reminders[0]
	if r.Tool != adl.ToolKettle {
		t.Fatalf("reminded tool = %d, want kettle", r.Tool)
	}
	if r.Level != Specific {
		t.Errorf("blind-tool reminder level = %v, want Specific (LED channel is gone)", r.Level)
	}
}

func TestAssumeBlindStepsAdvancesPastBlindStep(t *testing.T) {
	var reminders []Reminder
	sys, f := trainedSystem(t, SystemConfig{
		Sensing:          sensingConfig(10 * time.Second),
		AssumeBlindSteps: true,
		OnReminder:       func(r Reminder) { reminders = append(reminders, r) },
	})

	sys.SetToolOnline(adl.ToolKettle, false)
	sys.StartSession(ModeAssist)
	f.use(adl.ToolTeaBox, 2*time.Second)
	f.use(adl.ToolPot, 2*time.Second)
	// First idle period: a (specific) reminder for the blind kettle step.
	// Second idle period: no detection can ever answer it, so the step is
	// presumed done and the session moves on to the tea cup.
	f.sched.RunUntil(f.sched.Now() + 30*time.Second)

	if sys.Stats().PresumedSteps != 1 {
		t.Fatalf("PresumedSteps = %d, want 1 (reminders: %+v)", sys.Stats().PresumedSteps, reminders)
	}
	p, ok := sys.Predict()
	if !ok || p.Tool != adl.ToolTeaCup {
		t.Fatalf("after presumed kettle step: Predict = %+v, %v", p, ok)
	}
	// The remaining (sighted) step completes the session normally.
	f.use(adl.ToolTeaCup, 2*time.Second)
	if sys.Active() {
		t.Error("session did not complete after the presumed step")
	}
}

func TestAssumeBlindStepsOffStaysConservative(t *testing.T) {
	sys, f := trainedSystem(t, SystemConfig{
		Sensing: sensingConfig(10 * time.Second),
	})
	sys.SetToolOnline(adl.ToolKettle, false)
	sys.StartSession(ModeAssist)
	f.use(adl.ToolTeaBox, 2*time.Second)
	f.use(adl.ToolPot, 2*time.Second)
	f.sched.RunUntil(f.sched.Now() + 60*time.Second)

	if sys.Stats().PresumedSteps != 0 {
		t.Errorf("PresumedSteps = %d without AssumeBlindSteps", sys.Stats().PresumedSteps)
	}
	if p, ok := sys.Predict(); !ok || p.Tool != adl.ToolKettle {
		t.Errorf("expectation moved off the blind step: %+v, %v", p, ok)
	}
}

func TestHubHandleNodeState(t *testing.T) {
	sched := sim.New()
	hub := NewHub(sched)
	sys, err := hub.Add(SystemConfig{Activity: TeaMaking()})
	if err != nil {
		t.Fatal(err)
	}

	hub.HandleNodeState(adl.ToolPot, false)
	if !sys.Degraded() {
		t.Error("node-state transition not routed to the owning system")
	}
	hub.HandleNodeState(adl.ToolPot, true)
	if sys.Degraded() {
		t.Error("recovery not routed")
	}

	before := hub.UnknownTools
	hub.HandleNodeState(ToolID(99), false)
	if hub.UnknownTools != before+1 {
		t.Errorf("UnknownTools = %d, want %d", hub.UnknownTools, before+1)
	}
}

// TestSupervisionClosedLoop runs the full stack: a chaos plan crashes the
// tea-box node mid-run, gateway supervision declares it offline, the
// system raises a caregiver alert, and the scheduled reboot brings
// everything back symmetrically.
func TestSupervisionClosedLoop(t *testing.T) {
	activity := TeaMaking()
	p := NewPersona("Mr. Tanaka", 0)
	if err := p.SetRoutine(activity, activity.CanonicalRoutine()); err != nil {
		t.Fatal(err)
	}
	var alerts []CaregiverAlert
	s, err := NewSimulation(SimulationConfig{
		Activity: activity,
		Persona:  p,
		Seed:     11,
		System: SystemConfig{
			OnAlert: func(a CaregiverAlert) { alerts = append(alerts, a) },
		},
		Supervision: sensornet.SupervisionConfig{Interval: time.Second},
		Chaos: &chaos.Plan{Nodes: []chaos.NodeEvent{
			{At: 5 * time.Second, UID: uint16(adl.ToolTeaBox), Op: chaos.OpCrash},
			{At: 30 * time.Second, UID: uint16(adl.ToolTeaBox), Op: chaos.OpReboot},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	s.Sched.RunUntil(60 * time.Second)

	if got := s.Gateway.Stats.OfflineEvents; got != 1 {
		t.Errorf("OfflineEvents = %d, want 1", got)
	}
	if got := s.Gateway.Stats.OnlineEvents; got != 1 {
		t.Errorf("OnlineEvents = %d, want 1", got)
	}
	if len(alerts) != 2 {
		t.Fatalf("alerts = %+v, want offline + recovery", alerts)
	}
	if alerts[0].Recovered || alerts[0].Tool != adl.ToolTeaBox {
		t.Errorf("first alert = %+v, want tea-box offline", alerts[0])
	}
	if !alerts[1].Recovered || alerts[1].Tool != adl.ToolTeaBox {
		t.Errorf("second alert = %+v, want tea-box recovery", alerts[1])
	}
	if s.System.Degraded() {
		t.Errorf("system still degraded after recovery: %v", s.System.OfflineTools())
	}
	if s.Chaos.Stats.NodeEvents != 2 {
		t.Errorf("chaos NodeEvents = %d, want 2", s.Chaos.Stats.NodeEvents)
	}

	// The detection must be timely: one supervision interval plus the
	// three-missed-beats deadline, not an arbitrary sweep later.
	if alerts[0].At > 5*time.Second+4*time.Second+500*time.Millisecond {
		t.Errorf("offline detected at %v, too late", alerts[0].At)
	}
}
